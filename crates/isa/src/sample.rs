//! Deterministic entropy → valid-instruction mapping for property
//! tests.
//!
//! Maps raw entropy words onto the *valid* instruction space of an ISA
//! (in-range registers, 11-bit immediates, 21-bit branch offsets,
//! per-ISA condition and FP rules) without rejection sampling, so the
//! same entropy always yields the same instruction. The encode/decode
//! round-trip property cross-checks the generator against
//! [`IsaKind::validate`] so it cannot silently shrink its domain, and
//! the effects conformance differential executes its output on a
//! scratch machine — both draw from this one module.

use crate::{AluOp, Cond, FReg, FpOp, Inst, InstKind, IsaKind, Reg, Width};

fn gpr(isa: IsaKind, x: u64) -> Reg {
    Reg((x % u64::from(isa.gpr_count())) as u8)
}

fn fpr(isa: IsaKind, x: u64) -> FReg {
    // SIRA-32 has no FPRs; the FP kinds are never selected there, so
    // the placeholder register is never used.
    FReg((x % u64::from(isa.fpr_count().max(1))) as u8)
}

fn imm11(x: u64) -> i16 {
    ((x % 2048) as i16) - 1024
}

fn off21(x: u64) -> i32 {
    ((x % (1 << 21)) as i32) - (1 << 20)
}

fn width(x: u64) -> Width {
    [Width::Word, Width::Byte, Width::Half][(x % 3) as usize]
}

/// Deterministically maps four entropy words onto one valid
/// instruction for `isa`. SIRA-32 never draws the FP kinds (20..30)
/// and conditionalises anything; SIRA-64 draws all kinds but keeps the
/// condition on branches only.
pub fn inst(isa: IsaKind, sel: u64, a: u64, b: u64, c: u64) -> Inst {
    let n_kinds = match isa {
        IsaKind::Sira32 => 20,
        IsaKind::Sira64 => 30,
    };
    let rd = gpr(isa, a);
    let rn = gpr(isa, b);
    let rm = gpr(isa, c);
    let fd = fpr(isa, a);
    let fa = fpr(isa, b);
    let fb = fpr(isa, c);
    let kind = match sel % n_kinds {
        0 => InstKind::Nop,
        1 => InstKind::Halt,
        2 => InstKind::Svc {
            imm: (a % 0x1_0000) as u16,
        },
        3 => InstKind::Ret,
        4 => InstKind::Alu {
            op: AluOp::ALL[(sel / n_kinds % 12) as usize],
            rd,
            rn,
            rm,
        },
        5 => InstKind::AluImm {
            op: AluOp::ALL[(sel / n_kinds % 12) as usize],
            rd,
            rn,
            imm: imm11(c),
        },
        6 => InstKind::Cmp { rn, rm },
        7 => InstKind::CmpImm { rn, imm: imm11(c) },
        8 => InstKind::MovImm {
            rd,
            imm: (b % 0x1_0000) as u16,
            shift: (c % (u64::from(isa.max_mov_shift()) + 1)) as u8,
            keep: a % 2 == 1,
        },
        9 => InstKind::Mov { rd, rm },
        10 => InstKind::Mvn { rd, rm },
        11 => InstKind::Ld {
            width: width(sel / n_kinds),
            rd,
            rn,
            off: imm11(c),
        },
        12 => InstKind::St {
            width: width(sel / n_kinds),
            rd,
            rn,
            off: imm11(c),
        },
        13 => InstKind::LdR {
            width: width(sel / n_kinds),
            rd,
            rn,
            rm,
        },
        14 => InstKind::StR {
            width: width(sel / n_kinds),
            rd,
            rn,
            rm,
        },
        15 => InstKind::B { off: off21(a) },
        16 => InstKind::Bl { off: off21(a) },
        17 => InstKind::Blr { rm },
        18 => InstKind::Swp { rd, rn, rm },
        19 => InstKind::AmoAdd { rd, rn, rm },
        20 => InstKind::Fp {
            op: FpOp::ALL[(sel / n_kinds % 8) as usize],
            fd,
            fa,
            fb,
        },
        21 => InstKind::FpCmp { fa, fb },
        22 => InstKind::FMovToFp { fd, rn },
        23 => InstKind::FMovFromFp { rd, fa },
        24 => InstKind::Fcvtzs { rd, fa },
        25 => InstKind::Scvtf { fd, rn },
        26 => InstKind::FLd {
            fd,
            rn,
            off: imm11(c),
        },
        27 => InstKind::FSt {
            fd,
            rn,
            off: imm11(c),
        },
        28 => InstKind::FLdR { fd, rn, rm },
        _ => InstKind::FStR { fd, rn, rm },
    };
    let cond = match isa {
        IsaKind::Sira32 => Cond::ALL[(c % 13) as usize],
        IsaKind::Sira64 => {
            if matches!(kind, InstKind::B { .. }) {
                Cond::ALL[(c % 13) as usize]
            } else {
                Cond::Al
            }
        }
    };
    Inst { cond, kind }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_selector_yields_a_valid_instruction() {
        for isa in IsaKind::ALL {
            for sel in 0..64 {
                let inst = inst(isa, sel, 7, 13, 29);
                assert!(
                    isa.validate(&inst).is_ok(),
                    "invalid sample for {isa}: {inst}"
                );
            }
        }
    }
}
