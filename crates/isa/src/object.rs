//! Object files, symbols, relocations and the linker.
//!
//! An [`Object`] is the output of the assembler or a compiler backend: a
//! text section of instructions, a data-template section, symbol
//! definitions and unresolved relocations. [`link`] combines objects into
//! a loadable [`Image`].
//!
//! Data symbols resolve to **global-base-relative offsets** rather than
//! absolute addresses: every process receives its own copy of the data
//! template, and code addresses globals as `GB + offset`. Text symbols
//! resolve to absolute byte addresses (text is shared between processes).

use crate::inst::{Inst, InstKind};
use crate::{IsaKind, LinkError};
use std::collections::HashMap;

/// Base byte address where the linker places the text section.
pub const TEXT_BASE: u32 = 0x0000_1000;

/// Which section a symbol lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Section {
    /// Instructions; symbol offsets are instruction indices.
    Text,
    /// Initialised/zeroed data template; offsets are bytes (GB-relative).
    Data,
}

/// A symbol definition inside an object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SymDef {
    /// Symbol name (e.g. `_start`, `main`, `__f64_add`, `grid`).
    pub name: String,
    /// The section the symbol is defined in.
    pub section: Section,
    /// Offset within the object's section (instructions for text, bytes
    /// for data).
    pub offset: u32,
}

/// An unresolved reference from an object's text to a symbol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reloc {
    /// A `bl` at text index `at` targeting a text symbol; the linker
    /// patches the relative word offset.
    Call { at: u32, name: String },
    /// A `movz`/`movk` pair starting at text index `at` to be patched
    /// with the absolute byte address of a text symbol.
    TextAddr { at: u32, name: String },
    /// A `movz`/`movk` pair starting at text index `at` to be patched
    /// with the GB-relative byte offset of a data symbol.
    DataOff { at: u32, name: String },
}

impl Reloc {
    fn name(&self) -> &str {
        match self {
            Reloc::Call { name, .. }
            | Reloc::TextAddr { name, .. }
            | Reloc::DataOff { name, .. } => name,
        }
    }
}

/// A relocatable unit: the output of [`crate::Asm::into_object`] or a
/// compiler backend.
#[derive(Debug, Clone, Default)]
pub struct Object {
    /// Target ISA (`None` only for the empty default object).
    pub isa: Option<IsaKind>,
    /// The text section.
    pub text: Vec<Inst>,
    /// The data template (copied per process at load time).
    pub data: Vec<u8>,
    /// Symbols this object defines.
    pub defs: Vec<SymDef>,
    /// References this object makes.
    pub relocs: Vec<Reloc>,
}

/// A resolved symbol in a linked image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Symbol {
    /// Symbol name.
    pub name: String,
    /// Section.
    pub section: Section,
    /// Absolute byte address for text symbols; GB-relative byte offset
    /// for data symbols.
    pub value: u32,
}

/// The symbol table of a linked image, with function-range lookup used by
/// the per-function profiler (vulnerability-window attribution).
#[derive(Debug, Clone, Default)]
pub struct SymbolTable {
    symbols: Vec<Symbol>,
    /// Text symbols sorted by address, for range lookup.
    text_sorted: Vec<(u32, usize)>,
    by_name: HashMap<String, usize>,
}

impl SymbolTable {
    fn build(symbols: Vec<Symbol>) -> SymbolTable {
        let by_name = symbols
            .iter()
            .enumerate()
            .map(|(i, s)| (s.name.clone(), i))
            .collect();
        let mut text_sorted: Vec<(u32, usize)> = symbols
            .iter()
            .enumerate()
            .filter(|(_, s)| s.section == Section::Text)
            .map(|(i, s)| (s.value, i))
            .collect();
        text_sorted.sort_unstable();
        SymbolTable {
            symbols,
            text_sorted,
            by_name,
        }
    }

    /// Looks a symbol up by name.
    pub fn get(&self, name: &str) -> Option<&Symbol> {
        self.by_name.get(name).map(|&i| &self.symbols[i])
    }

    /// The text symbol (function) covering the given byte address, if any.
    pub fn function_at(&self, addr: u32) -> Option<&Symbol> {
        let idx = self.text_sorted.partition_point(|&(a, _)| a <= addr);
        idx.checked_sub(1)
            .map(|i| &self.symbols[self.text_sorted[i].1])
    }

    /// Iterates over all symbols.
    pub fn iter(&self) -> impl Iterator<Item = &Symbol> {
        self.symbols.iter()
    }

    /// Number of symbols.
    pub fn len(&self) -> usize {
        self.symbols.len()
    }

    /// True if the table holds no symbols.
    pub fn is_empty(&self) -> bool {
        self.symbols.is_empty()
    }
}

/// A fully linked, loadable program image.
#[derive(Debug, Clone)]
pub struct Image {
    /// Target ISA.
    pub isa: IsaKind,
    /// Byte address of the first instruction.
    pub text_base: u32,
    /// Linked instructions (instruction `i` lives at `text_base + 4*i`).
    pub text: Vec<Inst>,
    /// The per-process data template; a process's data segment is
    /// initialised from this and sized `data_size`.
    pub data_template: Vec<u8>,
    /// Entry point (absolute byte address of `_start`).
    pub entry: u32,
    /// Resolved symbols.
    pub symbols: SymbolTable,
}

impl Image {
    /// Byte size of the text section.
    pub fn text_bytes(&self) -> u32 {
        (self.text.len() as u32) * 4
    }

    /// Size in bytes of the data template.
    pub fn data_size(&self) -> u32 {
        self.data_template.len() as u32
    }
}

fn patch_pair(text: &mut [Inst], at: u32, value: u32, name: &str) -> Result<(), LinkError> {
    let at = at as usize;
    let err = |detail: &str| LinkError::BadReloc {
        name: name.to_string(),
        detail: detail.into(),
    };
    if at + 1 >= text.len() {
        return Err(err("patch site out of range"));
    }
    match (&mut text[at].kind, value as u16) {
        (
            InstKind::MovImm {
                imm,
                keep: false,
                shift: 0,
                ..
            },
            low,
        ) => *imm = low,
        _ => return Err(err("patch site is not a movz #0 instruction")),
    }
    match (&mut text[at + 1].kind, (value >> 16) as u16) {
        (
            InstKind::MovImm {
                imm,
                keep: true,
                shift: 1,
                ..
            },
            high,
        ) => *imm = high,
        _ => return Err(err("patch site +1 is not a movk lsl #16 instruction")),
    }
    Ok(())
}

/// Links objects into an [`Image`].
///
/// Text sections are concatenated in object order; data sections are
/// concatenated with 16-byte alignment. All relocations are resolved and
/// the `_start` symbol becomes the entry point.
///
/// # Errors
///
/// Returns a [`LinkError`] for undefined or duplicate symbols, an object
/// whose ISA differs from `isa`, a missing `_start`, or a malformed
/// relocation site.
pub fn link(isa: IsaKind, objects: &[Object]) -> Result<Image, LinkError> {
    let mut text: Vec<Inst> = Vec::new();
    let mut data: Vec<u8> = Vec::new();
    let mut symbols: Vec<Symbol> = Vec::new();
    let mut seen: HashMap<String, ()> = HashMap::new();
    let mut relocs: Vec<Reloc> = Vec::new();

    for obj in objects {
        if let Some(found) = obj.isa {
            if found != isa {
                return Err(LinkError::IsaMismatch {
                    expected: isa.name(),
                    found: found.name(),
                });
            }
        }
        let text_off = text.len() as u32;
        // Align each object's data to 16 bytes so f64 arrays stay aligned.
        while !data.len().is_multiple_of(16) {
            data.push(0);
        }
        let data_off = data.len() as u32;
        text.extend_from_slice(&obj.text);
        data.extend_from_slice(&obj.data);
        for def in &obj.defs {
            if seen.insert(def.name.clone(), ()).is_some() {
                return Err(LinkError::Duplicate {
                    name: def.name.clone(),
                });
            }
            let value = match def.section {
                Section::Text => TEXT_BASE + (text_off + def.offset) * 4,
                Section::Data => data_off + def.offset,
            };
            symbols.push(Symbol {
                name: def.name.clone(),
                section: def.section,
                value,
            });
        }
        for reloc in &obj.relocs {
            relocs.push(match reloc.clone() {
                Reloc::Call { at, name } => Reloc::Call {
                    at: at + text_off,
                    name,
                },
                Reloc::TextAddr { at, name } => Reloc::TextAddr {
                    at: at + text_off,
                    name,
                },
                Reloc::DataOff { at, name } => Reloc::DataOff {
                    at: at + text_off,
                    name,
                },
            });
        }
    }

    let table = SymbolTable::build(symbols);
    for reloc in &relocs {
        let name = reloc.name();
        let sym = table.get(name).ok_or_else(|| LinkError::Undefined {
            name: name.to_string(),
        })?;
        match reloc {
            Reloc::Call { at, .. } => {
                if sym.section != Section::Text {
                    return Err(LinkError::BadReloc {
                        name: name.to_string(),
                        detail: "call target is a data symbol".into(),
                    });
                }
                let target_word = (sym.value - TEXT_BASE) / 4;
                let off = target_word as i64 - (i64::from(*at) + 1);
                match &mut text[*at as usize].kind {
                    InstKind::Bl { off: slot } => *slot = off as i32,
                    _ => {
                        return Err(LinkError::BadReloc {
                            name: name.to_string(),
                            detail: "call patch site is not a bl".into(),
                        })
                    }
                }
            }
            Reloc::TextAddr { at, .. } => {
                if sym.section != Section::Text {
                    return Err(LinkError::BadReloc {
                        name: name.to_string(),
                        detail: "text-address reloc against data symbol".into(),
                    });
                }
                patch_pair(&mut text, *at, sym.value, name)?;
            }
            Reloc::DataOff { at, .. } => {
                if sym.section != Section::Data {
                    return Err(LinkError::BadReloc {
                        name: name.to_string(),
                        detail: "data-offset reloc against text symbol".into(),
                    });
                }
                patch_pair(&mut text, *at, sym.value, name)?;
            }
        }
    }

    let entry = table.get("_start").ok_or(LinkError::NoEntry)?.value;
    Ok(Image {
        isa,
        text_base: TEXT_BASE,
        text,
        data_template: data,
        entry,
        symbols: table,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Asm, Reg};

    #[test]
    fn link_two_objects_with_call() {
        let mut a = Asm::new(IsaKind::Sira64);
        a.global_fn("_start");
        a.bl_sym("helper");
        a.halt();

        let mut b = Asm::new(IsaKind::Sira64);
        b.global_fn("helper");
        b.movz(Reg(0), 7, 0);
        b.ret();

        let img = link(IsaKind::Sira64, &[a.into_object(), b.into_object()]).unwrap();
        assert_eq!(img.entry, TEXT_BASE);
        // bl at word 0 must jump to word 2 (offset +1).
        match img.text[0].kind {
            InstKind::Bl { off } => assert_eq!(off, 1),
            ref k => panic!("expected bl, got {k:?}"),
        }
        let helper = img.symbols.get("helper").unwrap();
        assert_eq!(helper.value, TEXT_BASE + 8);
    }

    #[test]
    fn undefined_symbol_fails() {
        let mut a = Asm::new(IsaKind::Sira32);
        a.global_fn("_start");
        a.bl_sym("missing");
        let err = link(IsaKind::Sira32, &[a.into_object()]).unwrap_err();
        assert_eq!(
            err,
            LinkError::Undefined {
                name: "missing".into()
            }
        );
    }

    #[test]
    fn duplicate_symbol_fails() {
        let mut a = Asm::new(IsaKind::Sira32);
        a.global_fn("_start");
        a.halt();
        let mut b = Asm::new(IsaKind::Sira32);
        b.global_fn("_start");
        b.halt();
        let err = link(IsaKind::Sira32, &[a.into_object(), b.into_object()]).unwrap_err();
        assert_eq!(
            err,
            LinkError::Duplicate {
                name: "_start".into()
            }
        );
    }

    #[test]
    fn missing_entry_fails() {
        let mut a = Asm::new(IsaKind::Sira32);
        a.global_fn("not_start");
        a.halt();
        let err = link(IsaKind::Sira32, &[a.into_object()]).unwrap_err();
        assert_eq!(err, LinkError::NoEntry);
    }

    #[test]
    fn isa_mismatch_fails() {
        let mut a = Asm::new(IsaKind::Sira32);
        a.global_fn("_start");
        a.halt();
        let err = link(IsaKind::Sira64, &[a.into_object()]).unwrap_err();
        assert!(matches!(err, LinkError::IsaMismatch { .. }));
    }

    #[test]
    fn data_symbols_are_gb_relative_and_aligned() {
        let mut a = Asm::new(IsaKind::Sira64);
        a.global_fn("_start");
        a.lea_data(Reg(0), "table");
        a.halt();
        a.data_bytes("pad", &[1, 2, 3]);
        let mut b = Asm::new(IsaKind::Sira64);
        b.data_zero("table", 64);
        let img = link(IsaKind::Sira64, &[a.into_object(), b.into_object()]).unwrap();
        let table = img.symbols.get("table").unwrap();
        assert_eq!(table.section, Section::Data);
        // Object b's data starts at the next 16-byte boundary after 3 bytes.
        assert_eq!(table.value, 16);
        // The movz/movk pair was patched with the offset.
        match img.text[0].kind {
            InstKind::MovImm {
                imm, keep: false, ..
            } => assert_eq!(imm, 16),
            ref k => panic!("expected movz, got {k:?}"),
        }
    }

    #[test]
    fn function_range_lookup() {
        let mut a = Asm::new(IsaKind::Sira64);
        a.global_fn("_start");
        a.nop();
        a.nop();
        a.global_fn("second");
        a.nop();
        let img = link(IsaKind::Sira64, &[a.into_object()]).unwrap();
        assert_eq!(img.symbols.function_at(TEXT_BASE).unwrap().name, "_start");
        assert_eq!(
            img.symbols.function_at(TEXT_BASE + 4).unwrap().name,
            "_start"
        );
        assert_eq!(
            img.symbols.function_at(TEXT_BASE + 8).unwrap().name,
            "second"
        );
        assert_eq!(
            img.symbols.function_at(TEXT_BASE + 400).unwrap().name,
            "second"
        );
        assert!(img.symbols.function_at(TEXT_BASE - 4).is_none());
    }
}
