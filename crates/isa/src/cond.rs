//! Condition codes.
//!
//! On [`Sira32`](crate::IsaKind::Sira32) every instruction carries a
//! condition (ARMv7-style conditional execution); on
//! [`Sira64`](crate::IsaKind::Sira64) only branches may be conditional.

use std::fmt;

/// A condition evaluated against the NZCV flags.
///
/// The encoding values match the 4-bit `cond` field of the binary format.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[repr(u8)]
pub enum Cond {
    /// Always (unconditional).
    #[default]
    Al = 0,
    /// Equal (Z set).
    Eq = 1,
    /// Not equal (Z clear).
    Ne = 2,
    /// Signed less than (N != V).
    Lt = 3,
    /// Signed less than or equal (Z set or N != V).
    Le = 4,
    /// Signed greater than (Z clear and N == V).
    Gt = 5,
    /// Signed greater than or equal (N == V).
    Ge = 6,
    /// Unsigned lower (C clear).
    Lo = 7,
    /// Unsigned lower or same (C clear or Z set).
    Ls = 8,
    /// Unsigned higher (C set and Z clear).
    Hi = 9,
    /// Unsigned higher or same (C set).
    Hs = 10,
    /// Negative (N set).
    Mi = 11,
    /// Positive or zero (N clear).
    Pl = 12,
}

impl Cond {
    /// All condition codes, in encoding order.
    pub const ALL: [Cond; 13] = [
        Cond::Al,
        Cond::Eq,
        Cond::Ne,
        Cond::Lt,
        Cond::Le,
        Cond::Gt,
        Cond::Ge,
        Cond::Lo,
        Cond::Ls,
        Cond::Hi,
        Cond::Hs,
        Cond::Mi,
        Cond::Pl,
    ];

    /// Decodes a 4-bit condition field.
    ///
    /// Returns `None` for the three unused encodings.
    pub fn from_bits(bits: u8) -> Option<Cond> {
        Cond::ALL.get(bits as usize).copied()
    }

    /// The 4-bit encoding of this condition.
    pub fn bits(self) -> u8 {
        self as u8
    }

    /// The logical inverse of this condition.
    ///
    /// `Al` is its own inverse (there is no "never" encoding).
    pub fn invert(self) -> Cond {
        match self {
            Cond::Al => Cond::Al,
            Cond::Eq => Cond::Ne,
            Cond::Ne => Cond::Eq,
            Cond::Lt => Cond::Ge,
            Cond::Le => Cond::Gt,
            Cond::Gt => Cond::Le,
            Cond::Ge => Cond::Lt,
            Cond::Lo => Cond::Hs,
            Cond::Ls => Cond::Hi,
            Cond::Hi => Cond::Ls,
            Cond::Hs => Cond::Lo,
            Cond::Mi => Cond::Pl,
            Cond::Pl => Cond::Mi,
        }
    }

    /// Evaluates the condition against NZCV flags.
    pub fn holds(self, n: bool, z: bool, c: bool, v: bool) -> bool {
        match self {
            Cond::Al => true,
            Cond::Eq => z,
            Cond::Ne => !z,
            Cond::Lt => n != v,
            Cond::Le => z || (n != v),
            Cond::Gt => !z && (n == v),
            Cond::Ge => n == v,
            Cond::Lo => !c,
            Cond::Ls => !c || z,
            Cond::Hi => c && !z,
            Cond::Hs => c,
            Cond::Mi => n,
            Cond::Pl => !n,
        }
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Cond::Al => "al",
            Cond::Eq => "eq",
            Cond::Ne => "ne",
            Cond::Lt => "lt",
            Cond::Le => "le",
            Cond::Gt => "gt",
            Cond::Ge => "ge",
            Cond::Lo => "lo",
            Cond::Ls => "ls",
            Cond::Hi => "hi",
            Cond::Hs => "hs",
            Cond::Mi => "mi",
            Cond::Pl => "pl",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_roundtrip() {
        for c in Cond::ALL {
            assert_eq!(Cond::from_bits(c.bits()), Some(c));
        }
        assert_eq!(Cond::from_bits(13), None);
        assert_eq!(Cond::from_bits(15), None);
    }

    #[test]
    fn invert_is_involution() {
        for c in Cond::ALL {
            assert_eq!(c.invert().invert(), c);
        }
    }

    #[test]
    fn invert_flips_outcome() {
        // For every non-Al condition and every flag combination, cond and
        // its inverse must disagree.
        for c in Cond::ALL.into_iter().filter(|&c| c != Cond::Al) {
            for bits in 0..16u8 {
                let (n, z, cf, v) = (bits & 1 != 0, bits & 2 != 0, bits & 4 != 0, bits & 8 != 0);
                assert_ne!(
                    c.holds(n, z, cf, v),
                    c.invert().holds(n, z, cf, v),
                    "cond {c} flags n={n} z={z} c={cf} v={v}"
                );
            }
        }
    }

    #[test]
    fn semantics_spot_checks() {
        // cmp 3, 5 (signed): N set (3-5 < 0), Z clear, borrow -> C clear.
        assert!(Cond::Lt.holds(true, false, false, false));
        assert!(Cond::Le.holds(true, false, false, false));
        assert!(!Cond::Ge.holds(true, false, false, false));
        assert!(Cond::Lo.holds(true, false, false, false));
        // cmp 5, 5: Z set, C set (no borrow).
        assert!(Cond::Eq.holds(false, true, true, false));
        assert!(Cond::Ls.holds(false, true, true, false));
        assert!(Cond::Hs.holds(false, true, true, false));
        assert!(!Cond::Hi.holds(false, true, true, false));
    }

    #[test]
    fn display_names() {
        assert_eq!(Cond::Eq.to_string(), "eq");
        assert_eq!(Cond::Hs.to_string(), "hs");
    }
}
