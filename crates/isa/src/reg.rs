//! Register newtypes and per-ISA ABI register assignments.

use std::fmt;

/// An integer (general-purpose) register index.
///
/// Valid indices are `0..16` on SIRA-32 and `0..32` on SIRA-64 (where
/// index 31 is the stack pointer). The [`crate::IsaKind::validate`] pass
/// rejects out-of-range indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Reg(pub u8);

/// A floating-point register index (SIRA-64 only), `0..32`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct FReg(pub u8);

impl Reg {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl FReg {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl fmt::Display for FReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "d{}", self.0)
    }
}

impl From<Reg> for u8 {
    fn from(r: Reg) -> u8 {
        r.0
    }
}

impl From<FReg> for u8 {
    fn from(r: FReg) -> u8 {
        r.0
    }
}

/// ABI register assignments for SIRA-32 (ARMv7-like).
///
/// 16 general-purpose registers. r0–r3 carry arguments and return values
/// (an `f64` occupies the pair r0:r1), r4–r10 are callee-saved, r11 is the
/// global base, r12 is an intra-call scratch register, r13 the stack
/// pointer, r14 the link register and r15 the architected program counter.
pub mod sira32 {
    use super::Reg;

    /// Number of general-purpose registers (including SP, LR, PC).
    pub const GPR_COUNT: u8 = 16;
    /// First argument / return-value register.
    pub const A0: Reg = Reg(0);
    /// Second argument register.
    pub const A1: Reg = Reg(1);
    /// Third argument register.
    pub const A2: Reg = Reg(2);
    /// Fourth argument register.
    pub const A3: Reg = Reg(3);
    /// Global base register (points at the process data segment).
    pub const GB: Reg = Reg(11);
    /// Intra-procedure scratch register.
    pub const SCRATCH: Reg = Reg(12);
    /// Stack pointer.
    pub const SP: Reg = Reg(13);
    /// Link register.
    pub const LR: Reg = Reg(14);
    /// Architected program counter (reads yield the next-instruction
    /// address; writes branch).
    pub const PC: Reg = Reg(15);
    /// Callee-saved registers available to the register allocator.
    pub const CALLEE_SAVED: [Reg; 7] = [Reg(4), Reg(5), Reg(6), Reg(7), Reg(8), Reg(9), Reg(10)];
    /// Caller-saved registers beyond the argument registers.
    pub const CALLER_SAVED: [Reg; 4] = [Reg(0), Reg(1), Reg(2), Reg(3)];
}

/// ABI register assignments for SIRA-64 (ARMv8-like).
///
/// 31 general-purpose registers plus a dedicated SP slot at index 31; the
/// program counter is not architected. x0–x7 carry arguments, x8–x15 are
/// caller-saved temporaries, x16–x27 are callee-saved, x28 is the global
/// base, x29 is scratch and x30 the link register. d0–d7 carry FP
/// arguments, d8–d15 are callee-saved, d16–d31 are temporaries.
pub mod sira64 {
    use super::{FReg, Reg};

    /// Number of integer register-file slots (x0–x30 plus SP at 31).
    pub const GPR_COUNT: u8 = 32;
    /// Number of floating-point registers.
    pub const FPR_COUNT: u8 = 32;
    /// First argument / return-value register.
    pub const A0: Reg = Reg(0);
    /// Second argument register.
    pub const A1: Reg = Reg(1);
    /// Third argument register.
    pub const A2: Reg = Reg(2);
    /// Fourth argument register.
    pub const A3: Reg = Reg(3);
    /// Global base register.
    pub const GB: Reg = Reg(28);
    /// Intra-procedure scratch register.
    pub const SCRATCH: Reg = Reg(29);
    /// Link register.
    pub const LR: Reg = Reg(30);
    /// Stack pointer (register-file slot 31).
    pub const SP: Reg = Reg(31);
    /// First FP argument / return register.
    pub const D0: FReg = FReg(0);
    /// Callee-saved integer registers available to the register allocator.
    pub const CALLEE_SAVED: [Reg; 12] = [
        Reg(16),
        Reg(17),
        Reg(18),
        Reg(19),
        Reg(20),
        Reg(21),
        Reg(22),
        Reg(23),
        Reg(24),
        Reg(25),
        Reg(26),
        Reg(27),
    ];
    /// Caller-saved temporaries beyond the argument registers.
    pub const CALLER_SAVED: [Reg; 8] = [
        Reg(8),
        Reg(9),
        Reg(10),
        Reg(11),
        Reg(12),
        Reg(13),
        Reg(14),
        Reg(15),
    ];
    /// Callee-saved FP registers.
    pub const F_CALLEE_SAVED: [FReg; 8] = [
        FReg(8),
        FReg(9),
        FReg(10),
        FReg(11),
        FReg(12),
        FReg(13),
        FReg(14),
        FReg(15),
    ];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert_eq!(Reg(7).to_string(), "r7");
        assert_eq!(FReg(31).to_string(), "d31");
    }

    #[test]
    fn abi_registers_disjoint_sira32() {
        let special = [
            sira32::GB,
            sira32::SCRATCH,
            sira32::SP,
            sira32::LR,
            sira32::PC,
        ];
        for r in sira32::CALLEE_SAVED {
            assert!(!special.contains(&r));
            assert!(!sira32::CALLER_SAVED.contains(&r));
        }
    }

    #[test]
    fn abi_registers_disjoint_sira64() {
        let special = [sira64::GB, sira64::SCRATCH, sira64::SP, sira64::LR];
        for r in sira64::CALLEE_SAVED {
            assert!(!special.contains(&r));
            assert!(!sira64::CALLER_SAVED.contains(&r));
        }
    }
}
