//! # fracas-isa — the SIRA instruction set architectures
//!
//! This crate defines the two instruction sets used throughout FRACAS to
//! stand in for ARMv7 (Cortex-A9) and ARMv8 (Cortex-A72) in the DAC'18
//! reproduction:
//!
//! * [`IsaKind::Sira32`] — a 32-bit ISA with a 16-entry register file
//!   (r13 = SP, r14 = LR, r15 = PC), per-instruction conditional execution
//!   and **no** hardware floating point (ARMv7-like).
//! * [`IsaKind::Sira64`] — a 64-bit ISA with a 32-entry integer register
//!   file, 32 hardware floating-point registers, and branches as the only
//!   conditional instructions (ARMv8-like).
//!
//! Both share a single instruction vocabulary ([`InstKind`]) and a 32-bit
//! binary encoding ([`encode`]/[`decode`]), a disassembler, an assembler /
//! program builder ([`Asm`]) and a relocating linker ([`link`]) producing
//! loadable [`Image`]s.
//!
//! ## Example
//!
//! Assemble, link and inspect a trivial program:
//!
//! ```
//! use fracas_isa::{Asm, IsaKind, link, Reg};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut asm = Asm::new(IsaKind::Sira64);
//! asm.global_fn("_start");
//! asm.movz(Reg(0), 41, 0);
//! asm.addi(Reg(0), Reg(0), 1);
//! asm.halt();
//! let image = link(IsaKind::Sira64, &[asm.into_object()])?;
//! assert_eq!(image.text.len(), 3);
//! # Ok(())
//! # }
//! ```

mod asm;
mod cond;
pub mod effects;
mod encode;
mod error;
mod inst;
mod isa;
pub mod lower;
mod object;
mod reg;
pub mod sample;

pub use asm::{Asm, Label};
pub use cond::Cond;
pub use effects::{CostClass, CtrlFlow, Effects, MemEffect, RegSet, TrapClass};
pub use encode::{decode, encode};
pub use error::{DecodeError, IsaError, LinkError};
pub use inst::{AluOp, FpOp, Inst, InstKind, Width};
pub use isa::{IsaKind, RegFileLayout};
pub use object::{link, Image, Object, Reloc, Section, SymDef, SymbolTable};
pub use reg::{sira32, sira64, FReg, Reg};
