//! Binary instruction encoding.
//!
//! Every instruction encodes into one little-endian 32-bit word:
//!
//! ```text
//! [31:25] opcode (7 bits)
//! [24:21] condition (4 bits)
//! [20:0]  operands:
//!   R-form: rd[20:16] rn[15:11] rm[10:6]
//!   I-form: rd[20:16] rn[15:11] imm11[10:0] (signed)
//!   M-form: rd[20:16] imm16[15:0]
//!   B-form: off21[20:0] (signed word offset)
//! ```

use crate::inst::{AluOp, FpOp, Inst, InstKind, Width};
use crate::{Cond, DecodeError, FReg, Reg};

const OP_NOP: u32 = 0;
const OP_HALT: u32 = 1;
const OP_SVC: u32 = 2;
const OP_RET: u32 = 3;
const OP_ALU_R: u32 = 8; // ..=19
const OP_CMP: u32 = 20;
const OP_MOV: u32 = 21;
const OP_MVN: u32 = 22;
const OP_ALU_I: u32 = 24; // ..=35
const OP_CMP_I: u32 = 36;
const OP_MOVIMM: u32 = 37; // + shift*2 + keep -> ..=44
const OP_LD: u32 = 45; // + width -> ..=47
const OP_ST: u32 = 48;
const OP_LDR_R: u32 = 51;
const OP_STR_R: u32 = 54;
const OP_B: u32 = 57;
const OP_BL: u32 = 58;
const OP_BLR: u32 = 59;
const OP_SWP: u32 = 60;
const OP_AMOADD: u32 = 61;
const OP_FP: u32 = 64; // ..=71
const OP_FPCMP: u32 = 72;
const OP_FMOV_TO: u32 = 73;
const OP_FMOV_FROM: u32 = 74;
const OP_FCVTZS: u32 = 75;
const OP_SCVTF: u32 = 76;
const OP_FLD: u32 = 77;
const OP_FST: u32 = 78;
const OP_FLD_R: u32 = 79;
const OP_FST_R: u32 = 80;

fn r_form(rd: u8, rn: u8, rm: u8) -> u32 {
    (u32::from(rd) << 16) | (u32::from(rn) << 11) | (u32::from(rm) << 6)
}

fn i_form(rd: u8, rn: u8, imm: i16) -> u32 {
    (u32::from(rd) << 16) | (u32::from(rn) << 11) | (imm as u32 & 0x7ff)
}

fn m_form(rd: u8, imm: u16) -> u32 {
    (u32::from(rd) << 16) | u32::from(imm)
}

fn b_form(off: i32) -> u32 {
    off as u32 & 0x1f_ffff
}

fn width_idx(w: Width) -> u32 {
    w as u32
}

/// Encodes an instruction into its 32-bit binary form.
///
/// Encoding is total: any representable [`Inst`] encodes; ISA-specific
/// *validity* is the job of [`crate::IsaKind::validate`].
pub fn encode(inst: &Inst) -> u32 {
    let (opcode, operands) = match inst.kind {
        InstKind::Nop => (OP_NOP, 0),
        InstKind::Halt => (OP_HALT, 0),
        InstKind::Svc { imm } => (OP_SVC, u32::from(imm)),
        InstKind::Ret => (OP_RET, 0),
        InstKind::Alu { op, rd, rn, rm } => (OP_ALU_R + op as u32, r_form(rd.0, rn.0, rm.0)),
        InstKind::Cmp { rn, rm } => (OP_CMP, r_form(0, rn.0, rm.0)),
        InstKind::Mov { rd, rm } => (OP_MOV, r_form(rd.0, 0, rm.0)),
        InstKind::Mvn { rd, rm } => (OP_MVN, r_form(rd.0, 0, rm.0)),
        InstKind::AluImm { op, rd, rn, imm } => (OP_ALU_I + op as u32, i_form(rd.0, rn.0, imm)),
        InstKind::CmpImm { rn, imm } => (OP_CMP_I, i_form(0, rn.0, imm)),
        InstKind::MovImm {
            rd,
            imm,
            shift,
            keep,
        } => (
            OP_MOVIMM + u32::from(shift) * 2 + u32::from(keep),
            m_form(rd.0, imm),
        ),
        InstKind::Ld { width, rd, rn, off } => (OP_LD + width_idx(width), i_form(rd.0, rn.0, off)),
        InstKind::St { width, rd, rn, off } => (OP_ST + width_idx(width), i_form(rd.0, rn.0, off)),
        InstKind::LdR { width, rd, rn, rm } => {
            (OP_LDR_R + width_idx(width), r_form(rd.0, rn.0, rm.0))
        }
        InstKind::StR { width, rd, rn, rm } => {
            (OP_STR_R + width_idx(width), r_form(rd.0, rn.0, rm.0))
        }
        InstKind::B { off } => (OP_B, b_form(off)),
        InstKind::Bl { off } => (OP_BL, b_form(off)),
        InstKind::Blr { rm } => (OP_BLR, r_form(0, 0, rm.0)),
        InstKind::Swp { rd, rn, rm } => (OP_SWP, r_form(rd.0, rn.0, rm.0)),
        InstKind::AmoAdd { rd, rn, rm } => (OP_AMOADD, r_form(rd.0, rn.0, rm.0)),
        InstKind::Fp { op, fd, fa, fb } => (OP_FP + op as u32, r_form(fd.0, fa.0, fb.0)),
        InstKind::FpCmp { fa, fb } => (OP_FPCMP, r_form(0, fa.0, fb.0)),
        InstKind::FMovToFp { fd, rn } => (OP_FMOV_TO, r_form(fd.0, rn.0, 0)),
        InstKind::FMovFromFp { rd, fa } => (OP_FMOV_FROM, r_form(rd.0, fa.0, 0)),
        InstKind::Fcvtzs { rd, fa } => (OP_FCVTZS, r_form(rd.0, fa.0, 0)),
        InstKind::Scvtf { fd, rn } => (OP_SCVTF, r_form(fd.0, rn.0, 0)),
        InstKind::FLd { fd, rn, off } => (OP_FLD, i_form(fd.0, rn.0, off)),
        InstKind::FSt { fd, rn, off } => (OP_FST, i_form(fd.0, rn.0, off)),
        InstKind::FLdR { fd, rn, rm } => (OP_FLD_R, r_form(fd.0, rn.0, rm.0)),
        InstKind::FStR { fd, rn, rm } => (OP_FST_R, r_form(fd.0, rn.0, rm.0)),
    };
    (opcode << 25) | (u32::from(inst.cond.bits()) << 21) | operands
}

fn dec_rd(w: u32) -> Reg {
    Reg(((w >> 16) & 0x1f) as u8)
}

fn dec_rn(w: u32) -> Reg {
    Reg(((w >> 11) & 0x1f) as u8)
}

fn dec_rm(w: u32) -> Reg {
    Reg(((w >> 6) & 0x1f) as u8)
}

fn dec_fd(w: u32) -> FReg {
    FReg(((w >> 16) & 0x1f) as u8)
}

fn dec_fa(w: u32) -> FReg {
    FReg(((w >> 11) & 0x1f) as u8)
}

fn dec_fb(w: u32) -> FReg {
    FReg(((w >> 6) & 0x1f) as u8)
}

fn dec_imm11(w: u32) -> i16 {
    // Sign-extend the low 11 bits.
    (((w & 0x7ff) as i16) << 5) >> 5
}

fn dec_imm16(w: u32) -> u16 {
    (w & 0xffff) as u16
}

fn dec_off21(w: u32) -> i32 {
    ((w & 0x1f_ffff) as i32) << 11 >> 11
}

fn dec_width(idx: u32) -> Width {
    match idx {
        0 => Width::Word,
        1 => Width::Byte,
        _ => Width::Half,
    }
}

/// Decodes a 32-bit word back into an instruction.
///
/// # Errors
///
/// Returns [`DecodeError`] if the opcode or condition field is not a
/// legal encoding. (This is how the CPU detects corrupted instruction
/// fetches: an undecodable word raises an illegal-instruction trap.)
pub fn decode(word: u32) -> Result<Inst, DecodeError> {
    let opcode = word >> 25;
    let cond = Cond::from_bits(((word >> 21) & 0xf) as u8).ok_or(DecodeError { word })?;
    let kind = match opcode {
        OP_NOP => InstKind::Nop,
        OP_HALT => InstKind::Halt,
        OP_SVC => InstKind::Svc {
            imm: dec_imm16(word),
        },
        OP_RET => InstKind::Ret,
        o if (OP_ALU_R..OP_ALU_R + 12).contains(&o) => InstKind::Alu {
            op: AluOp::ALL[(o - OP_ALU_R) as usize],
            rd: dec_rd(word),
            rn: dec_rn(word),
            rm: dec_rm(word),
        },
        OP_CMP => InstKind::Cmp {
            rn: dec_rn(word),
            rm: dec_rm(word),
        },
        OP_MOV => InstKind::Mov {
            rd: dec_rd(word),
            rm: dec_rm(word),
        },
        OP_MVN => InstKind::Mvn {
            rd: dec_rd(word),
            rm: dec_rm(word),
        },
        o if (OP_ALU_I..OP_ALU_I + 12).contains(&o) => InstKind::AluImm {
            op: AluOp::ALL[(o - OP_ALU_I) as usize],
            rd: dec_rd(word),
            rn: dec_rn(word),
            imm: dec_imm11(word),
        },
        OP_CMP_I => InstKind::CmpImm {
            rn: dec_rn(word),
            imm: dec_imm11(word),
        },
        o if (OP_MOVIMM..OP_MOVIMM + 8).contains(&o) => {
            let sel = o - OP_MOVIMM;
            InstKind::MovImm {
                rd: dec_rd(word),
                imm: dec_imm16(word),
                shift: (sel / 2) as u8,
                keep: sel % 2 == 1,
            }
        }
        o if (OP_LD..OP_LD + 3).contains(&o) => InstKind::Ld {
            width: dec_width(o - OP_LD),
            rd: dec_rd(word),
            rn: dec_rn(word),
            off: dec_imm11(word),
        },
        o if (OP_ST..OP_ST + 3).contains(&o) => InstKind::St {
            width: dec_width(o - OP_ST),
            rd: dec_rd(word),
            rn: dec_rn(word),
            off: dec_imm11(word),
        },
        o if (OP_LDR_R..OP_LDR_R + 3).contains(&o) => InstKind::LdR {
            width: dec_width(o - OP_LDR_R),
            rd: dec_rd(word),
            rn: dec_rn(word),
            rm: dec_rm(word),
        },
        o if (OP_STR_R..OP_STR_R + 3).contains(&o) => InstKind::StR {
            width: dec_width(o - OP_STR_R),
            rd: dec_rd(word),
            rn: dec_rn(word),
            rm: dec_rm(word),
        },
        OP_B => InstKind::B {
            off: dec_off21(word),
        },
        OP_BL => InstKind::Bl {
            off: dec_off21(word),
        },
        OP_BLR => InstKind::Blr { rm: dec_rm(word) },
        OP_SWP => InstKind::Swp {
            rd: dec_rd(word),
            rn: dec_rn(word),
            rm: dec_rm(word),
        },
        OP_AMOADD => InstKind::AmoAdd {
            rd: dec_rd(word),
            rn: dec_rn(word),
            rm: dec_rm(word),
        },
        o if (OP_FP..OP_FP + 8).contains(&o) => InstKind::Fp {
            op: FpOp::ALL[(o - OP_FP) as usize],
            fd: dec_fd(word),
            fa: dec_fa(word),
            fb: dec_fb(word),
        },
        OP_FPCMP => InstKind::FpCmp {
            fa: dec_fa(word),
            fb: dec_fb(word),
        },
        OP_FMOV_TO => InstKind::FMovToFp {
            fd: dec_fd(word),
            rn: dec_rn(word),
        },
        OP_FMOV_FROM => InstKind::FMovFromFp {
            rd: dec_rd(word),
            fa: dec_fa(word),
        },
        OP_FCVTZS => InstKind::Fcvtzs {
            rd: dec_rd(word),
            fa: dec_fa(word),
        },
        OP_SCVTF => InstKind::Scvtf {
            fd: dec_fd(word),
            rn: dec_rn(word),
        },
        OP_FLD => InstKind::FLd {
            fd: dec_fd(word),
            rn: dec_rn(word),
            off: dec_imm11(word),
        },
        OP_FST => InstKind::FSt {
            fd: dec_fd(word),
            rn: dec_rn(word),
            off: dec_imm11(word),
        },
        OP_FLD_R => InstKind::FLdR {
            fd: dec_fd(word),
            rn: dec_rn(word),
            rm: dec_rm(word),
        },
        OP_FST_R => InstKind::FStR {
            fd: dec_fd(word),
            rn: dec_rn(word),
            rm: dec_rm(word),
        },
        _ => return Err(DecodeError { word }),
    };
    Ok(Inst { cond, kind })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(inst: Inst) {
        let word = encode(&inst);
        let back = decode(word).unwrap_or_else(|e| panic!("{inst}: {e}"));
        assert_eq!(back, inst, "word {word:#010x}");
    }

    #[test]
    fn roundtrip_core_instructions() {
        roundtrip(Inst::new(InstKind::Nop));
        roundtrip(Inst::new(InstKind::Halt));
        roundtrip(Inst::new(InstKind::Ret));
        roundtrip(Inst::new(InstKind::Svc { imm: 0x1234 }));
        for op in AluOp::ALL {
            roundtrip(Inst::new(InstKind::Alu {
                op,
                rd: Reg(3),
                rn: Reg(14),
                rm: Reg(31),
            }));
            roundtrip(Inst::new(InstKind::AluImm {
                op,
                rd: Reg(1),
                rn: Reg(2),
                imm: -1024,
            }));
            roundtrip(Inst::new(InstKind::AluImm {
                op,
                rd: Reg(1),
                rn: Reg(2),
                imm: 1023,
            }));
        }
        roundtrip(Inst::new(InstKind::Cmp {
            rn: Reg(4),
            rm: Reg(5),
        }));
        roundtrip(Inst::new(InstKind::CmpImm {
            rn: Reg(4),
            imm: -1,
        }));
        roundtrip(Inst::new(InstKind::Mov {
            rd: Reg(0),
            rm: Reg(30),
        }));
        roundtrip(Inst::new(InstKind::Mvn {
            rd: Reg(0),
            rm: Reg(30),
        }));
        for shift in 0..4 {
            for keep in [false, true] {
                roundtrip(Inst::new(InstKind::MovImm {
                    rd: Reg(9),
                    imm: 0xbeef,
                    shift,
                    keep,
                }));
            }
        }
    }

    #[test]
    fn roundtrip_memory_and_branches() {
        for width in [Width::Word, Width::Byte, Width::Half] {
            roundtrip(Inst::new(InstKind::Ld {
                width,
                rd: Reg(1),
                rn: Reg(2),
                off: -8,
            }));
            roundtrip(Inst::new(InstKind::St {
                width,
                rd: Reg(1),
                rn: Reg(2),
                off: 1016,
            }));
            roundtrip(Inst::new(InstKind::LdR {
                width,
                rd: Reg(1),
                rn: Reg(2),
                rm: Reg(3),
            }));
            roundtrip(Inst::new(InstKind::StR {
                width,
                rd: Reg(1),
                rn: Reg(2),
                rm: Reg(3),
            }));
        }
        roundtrip(Inst::new(InstKind::B { off: -(1 << 20) }));
        roundtrip(Inst::new(InstKind::B { off: (1 << 20) - 1 }));
        roundtrip(Inst::when(Cond::Ne, InstKind::B { off: -3 }));
        roundtrip(Inst::new(InstKind::Bl { off: 12345 }));
        roundtrip(Inst::new(InstKind::Blr { rm: Reg(7) }));
        roundtrip(Inst::new(InstKind::Swp {
            rd: Reg(1),
            rn: Reg(2),
            rm: Reg(3),
        }));
        roundtrip(Inst::new(InstKind::AmoAdd {
            rd: Reg(1),
            rn: Reg(2),
            rm: Reg(3),
        }));
    }

    #[test]
    fn roundtrip_fp() {
        for op in FpOp::ALL {
            roundtrip(Inst::new(InstKind::Fp {
                op,
                fd: FReg(31),
                fa: FReg(15),
                fb: FReg(1),
            }));
        }
        roundtrip(Inst::new(InstKind::FpCmp {
            fa: FReg(0),
            fb: FReg(1),
        }));
        roundtrip(Inst::new(InstKind::FMovToFp {
            fd: FReg(2),
            rn: Reg(3),
        }));
        roundtrip(Inst::new(InstKind::FMovFromFp {
            rd: Reg(3),
            fa: FReg(2),
        }));
        roundtrip(Inst::new(InstKind::Fcvtzs {
            rd: Reg(3),
            fa: FReg(2),
        }));
        roundtrip(Inst::new(InstKind::Scvtf {
            fd: FReg(2),
            rn: Reg(3),
        }));
        roundtrip(Inst::new(InstKind::FLd {
            fd: FReg(8),
            rn: Reg(31),
            off: 16,
        }));
        roundtrip(Inst::new(InstKind::FSt {
            fd: FReg(8),
            rn: Reg(31),
            off: -16,
        }));
        roundtrip(Inst::new(InstKind::FLdR {
            fd: FReg(8),
            rn: Reg(1),
            rm: Reg(2),
        }));
        roundtrip(Inst::new(InstKind::FStR {
            fd: FReg(8),
            rn: Reg(1),
            rm: Reg(2),
        }));
    }

    #[test]
    fn conditional_encodings() {
        for cond in Cond::ALL {
            roundtrip(Inst::when(
                cond,
                InstKind::AluImm {
                    op: AluOp::Add,
                    rd: Reg(0),
                    rn: Reg(0),
                    imm: 1,
                },
            ));
        }
    }

    #[test]
    fn bad_words_are_rejected() {
        // Opcode 127 is unused.
        assert!(decode(127 << 25).is_err());
        // Condition 15 is unused.
        assert!(decode((OP_NOP << 25) | (15 << 21)).is_err());
        // A gap opcode (62) is unused.
        assert!(decode(62 << 25).is_err());
    }

    #[test]
    fn imm11_sign_extension() {
        let i = Inst::new(InstKind::CmpImm {
            rn: Reg(0),
            imm: -1,
        });
        let w = encode(&i);
        assert_eq!(w & 0x7ff, 0x7ff);
        assert_eq!(decode(w).unwrap(), i);
    }
}
