//! FL sources for the eleven NPB-T applications.
//!
//! Each application module exposes a `COMMON` fragment (globals plus the
//! computational kernels, written once) and per-model `main` drivers;
//! [`source`] assembles the scenario's program. This mirrors how the
//! real NPB ships separate serial/OMP/MPI implementations of one
//! algorithm.

mod ft;
mod linear;
mod simple;
mod solvers;

use crate::{App, Model};

/// The FL source for an (application, model) variant.
///
/// # Panics
///
/// Panics when the variant does not exist in the suite; use
/// [`crate::has_variant`] to check first.
pub fn source(app: App, model: Model) -> String {
    assert!(
        crate::has_variant(app, model),
        "{app} has no {model} variant"
    );
    match app {
        App::Ep => simple::ep(model),
        App::Is => simple::is(model),
        App::Dc => simple::dc(model),
        App::Ua => simple::ua(model),
        App::Dt => simple::dt(),
        App::Cg => linear::cg(model),
        App::Mg => linear::mg(model),
        App::Lu => solvers::lu(model),
        App::Sp => solvers::sp(model),
        App::Bt => solvers::bt(model),
        App::Ft => ft::ft(model),
    }
}
