//! EP, IS, DC, UA and DT — the integer-leaning and irregular kernels.

use crate::Model;

/// EP: embarrassingly parallel pseudo-random pair rejection with a
/// magnitude histogram (FP-heavy, `sqrt` per accepted pair — the
/// softfloat blow-up driver on SIRA-32).
const EP_COMMON: &str = "
global int ep_bins[10];
global float ep_sx;
global float ep_sy;
global int ep_accept;

fn ep_chunk(int lo, int hi) {
    let int k = 0;
    let int seed = (lo * 2531 + 11) % 65537;
    let float x = 0.0;
    let float y = 0.0;
    let float t = 0.0;
    let float m = 0.0;
    let float lsx = 0.0;
    let float lsy = 0.0;
    let int lacc = 0;
    let int b = 0;
    for (k = lo; k < hi; k = k + 1) {
        seed = (seed * 75 + 74) % 65537;
        x = float(seed) / 65537.0 * 2.0 - 1.0;
        seed = (seed * 75 + 74) % 65537;
        y = float(seed) / 65537.0 * 2.0 - 1.0;
        t = x * x + y * y;
        if (t <= 1.0) {
            m = sqrt(t);
            lacc = lacc + 1;
            lsx = lsx + x * m;
            lsy = lsy + y * m;
            b = int(m * 10.0);
            if (b > 9) { b = 9; }
            omp_critical_enter(3);
            ep_bins[b] = ep_bins[b] + 1;
            omp_critical_exit(3);
        }
    }
    omp_critical_enter(4);
    ep_sx = ep_sx + lsx;
    ep_sy = ep_sy + lsy;
    ep_accept = ep_accept + lacc;
    omp_critical_exit(4);
}

fn ep_report() {
    let int k = 0;
    let int tot = 0;
    print_str(\"EP sx=\");
    print_float(ep_sx);
    print_str(\" sy=\");
    print_float(ep_sy);
    print_str(\" acc=\");
    print_int(ep_accept);
    for (k = 0; k < 10; k = k + 1) {
        print_char(32);
        print_int(ep_bins[k]);
        tot = tot + ep_bins[k];
    }
    print_str(\" VERIFIED \");
    if (tot == ep_accept && ep_accept > 0) { print_int(1); } else { print_int(0); }
    print_char(10);
}
";

pub fn ep(model: Model) -> String {
    let main = match model {
        Model::Serial => "fn main() -> int { ep_chunk(0, 1024); ep_report(); return 0; }",
        Model::Omp => {
            "fn main() -> int {
                omp_parallel_for(fn_addr(ep_chunk), 0, 1024);
                ep_report();
                return 0;
            }"
        }
        Model::Mpi => {
            "fn main() -> int {
                let int r = mpi_rank();
                let int n = mpi_size();
                let int per = 1024 / n;
                let int lo = r * per;
                let int hi = lo + per;
                let int k = 0;
                if (r == n - 1) { hi = 1024; }
                ep_chunk(lo, hi);
                ep_sx = mpi_reduce_sum_f(ep_sx);
                ep_sy = mpi_reduce_sum_f(ep_sy);
                ep_accept = mpi_reduce_sum_i(ep_accept);
                for (k = 0; k < 10; k = k + 1) {
                    ep_bins[k] = mpi_reduce_sum_i(ep_bins[k]);
                }
                if (r == 0) { ep_report(); }
                mpi_barrier();
                return 0;
            }"
        }
    };
    format!("{EP_COMMON}\n{main}")
}

/// IS: integer bucket sort — key generation, histogram, prefix scan and
/// rank verification (integer/memory bound; the paper's Table 2 case
/// study).
const IS_COMMON: &str = "
global int is_key[4096];
global int is_hist[512];
global int is_cum[512];
global int is_err;

fn is_fill(int lo, int hi) {
    let int k = 0;
    let int seed = (lo * 313 + 29) % 65537;
    for (k = lo; k < hi; k = k + 1) {
        seed = (seed * 75 + 74) % 65537;
        is_key[k] = seed % 512;
    }
}

fn is_count(int lo, int hi) {
    let int k = 0;
    for (k = lo; k < hi; k = k + 1) {
        is_hist[is_key[k]] = is_hist[is_key[k]] + 1;
    }
}

fn is_prefix() {
    let int b = 0;
    let int run = 0;
    for (b = 0; b < 512; b = b + 1) {
        run = run + is_hist[b];
        is_cum[b] = run;
    }
}

fn is_verify(int lo, int hi) {
    let int k = 0;
    let int errs = 0;
    let int key = 0;
    let int pos = 0;
    for (k = lo; k < hi; k = k + 1) {
        key = is_key[k];
        pos = is_cum[key];
        if (pos < 1 || pos > 4096) { errs = errs + 1; }
        if (key > 0) {
            if (is_cum[key - 1] > pos) { errs = errs + 1; }
        }
    }
    omp_critical_enter(2);
    is_err = is_err + errs;
    omp_critical_exit(2);
}

fn is_report() {
    let int chk = 0;
    let int b = 0;
    for (b = 0; b < 512; b = b + 1) { chk = chk + b * is_hist[b]; }
    print_str(\"IS chk=\");
    print_int(chk);
    print_str(\" VERIFIED \");
    if (is_err == 0 && is_cum[511] == 4096) { print_int(1); } else { print_int(0); }
    print_char(10);
}
";

pub fn is(model: Model) -> String {
    let main = match model {
        Model::Serial => {
            "fn main() -> int {
                is_fill(0, 4096);
                is_count(0, 4096);
                is_prefix();
                is_verify(0, 4096);
                is_report();
                return 0;
            }"
        }
        Model::Omp => {
            // Fill and verify parallelise; the histogram and scan stay on
            // the master (NPB-IS uses private histograms; the serialised
            // count is our shared-array substitute).
            "fn main() -> int {
                omp_parallel_for(fn_addr(is_fill), 0, 4096);
                is_count(0, 4096);
                is_prefix();
                omp_parallel_for(fn_addr(is_verify), 0, 4096);
                is_report();
                return 0;
            }"
        }
        Model::Mpi => {
            "global int is_tmp[512];
            fn main() -> int {
                let int r = mpi_rank();
                let int n = mpi_size();
                let int per = 4096 / n;
                let int lo = r * per;
                let int hi = lo + per;
                let int i = 0;
                let int src = 0;
                if (r == n - 1) { hi = 4096; }
                is_fill(lo, hi);
                is_count(lo, hi);
                if (r == 0) {
                    for (src = 1; src < n; src = src + 1) {
                        mpi_recv_bytes(addr_of(is_tmp), 512 * sizeof_int(), src, 21);
                        for (i = 0; i < 512; i = i + 1) {
                            is_hist[i] = is_hist[i] + is_tmp[i];
                        }
                    }
                    is_prefix();
                    for (src = 1; src < n; src = src + 1) {
                        mpi_send_bytes(addr_of(is_cum), 512 * sizeof_int(), src, 22);
                    }
                } else {
                    mpi_send_bytes(addr_of(is_hist), 512 * sizeof_int(), 0, 21);
                    mpi_recv_bytes(addr_of(is_cum), 512 * sizeof_int(), 0, 22);
                }
                is_verify(lo, hi);
                is_err = mpi_reduce_sum_i(is_err);
                if (r == 0) { is_report(); }
                mpi_barrier();
                return 0;
            }"
        }
    };
    format!("{IS_COMMON}\n{main}")
}

/// DC: data-cube group-by aggregation over synthetic records (integer
/// and memory bound; serial + OMP only, like NPB).
const DC_COMMON: &str = "
global int dc_d0[4096];
global int dc_d1[4096];
global int dc_d2[4096];
global int dc_m[4096];
global int dc_agg0[8];
global int dc_agg1[16];
global int dc_agg2[32];
global int dc_agg01[128];
global int dc_total;

fn dc_fill(int lo, int hi) {
    let int k = 0;
    let int seed = (lo * 97 + 3) % 65537;
    for (k = lo; k < hi; k = k + 1) {
        seed = (seed * 75 + 74) % 65537;
        dc_d0[k] = seed % 8;
        seed = (seed * 75 + 74) % 65537;
        dc_d1[k] = seed % 16;
        seed = (seed * 75 + 74) % 65537;
        dc_d2[k] = seed % 32;
        seed = (seed * 75 + 74) % 65537;
        dc_m[k] = seed % 1000;
    }
}

fn dc_cube() {
    let int k = 0;
    let int v = 0;
    for (k = 0; k < 4096; k = k + 1) {
        v = dc_m[k];
        dc_agg0[dc_d0[k]] = dc_agg0[dc_d0[k]] + v;
        dc_agg1[dc_d1[k]] = dc_agg1[dc_d1[k]] + v;
        dc_agg2[dc_d2[k]] = dc_agg2[dc_d2[k]] + v;
        dc_agg01[dc_d0[k] * 16 + dc_d1[k]] = dc_agg01[dc_d0[k] * 16 + dc_d1[k]] + v;
    }
}

fn dc_sum(int lo, int hi) {
    let int k = 0;
    let int s = 0;
    for (k = lo; k < hi; k = k + 1) { s = s + dc_m[k]; }
    omp_critical_enter(2);
    dc_total = dc_total + s;
    omp_critical_exit(2);
}

fn dc_report() {
    let int i = 0;
    let int t0 = 0;
    let int t1 = 0;
    let int t2 = 0;
    let int t01 = 0;
    for (i = 0; i < 8; i = i + 1) { t0 = t0 + dc_agg0[i]; }
    for (i = 0; i < 16; i = i + 1) { t1 = t1 + dc_agg1[i]; }
    for (i = 0; i < 32; i = i + 1) { t2 = t2 + dc_agg2[i]; }
    for (i = 0; i < 128; i = i + 1) { t01 = t01 + dc_agg01[i]; }
    print_str(\"DC total=\");
    print_int(dc_total);
    print_str(\" VERIFIED \");
    if (t0 == dc_total && t1 == dc_total && t2 == dc_total && t01 == dc_total) {
        print_int(1);
    } else {
        print_int(0);
    }
    print_char(10);
}
";

pub fn dc(model: Model) -> String {
    let main = match model {
        Model::Serial => {
            "fn main() -> int {
                dc_fill(0, 4096);
                dc_cube();
                dc_sum(0, 4096);
                dc_report();
                return 0;
            }"
        }
        Model::Omp => {
            "fn main() -> int {
                omp_parallel_for(fn_addr(dc_fill), 0, 4096);
                dc_cube();
                omp_parallel_for(fn_addr(dc_sum), 0, 4096);
                dc_report();
                return 0;
            }"
        }
        Model::Mpi => unreachable!("DC has no MPI variant"),
    };
    format!("{DC_COMMON}\n{main}")
}

/// UA: unstructured adaptive smoothing — indirect neighbour loads with
/// periodic re-meshing (irregular memory; serial + OMP only).
const UA_COMMON: &str = "
global float ua_v[512];
global float ua_w[512];
global int ua_nb[512];
global float ua_norm;

fn ua_mesh(int gen) {
    let int i = 0;
    let int a = 0;
    a = 2 * gen + 129;
    for (i = 0; i < 512; i = i + 1) {
        ua_nb[i] = (i * a + gen * 7 + 1) % 512;
    }
}

fn ua_init(int lo, int hi) {
    let int i = 0;
    for (i = lo; i < hi; i = i + 1) {
        ua_v[i] = float((i * 37) % 100) / 100.0;
    }
}

fn ua_smooth(int lo, int hi) {
    let int i = 0;
    for (i = lo; i < hi; i = i + 1) {
        ua_w[i] = 0.7 * ua_v[i] + 0.3 * ua_v[ua_nb[i]];
    }
}

fn ua_copy(int lo, int hi) {
    let int i = 0;
    for (i = lo; i < hi; i = i + 1) { ua_v[i] = ua_w[i]; }
}

fn ua_normf(int lo, int hi) {
    let int i = 0;
    let float s = 0.0;
    for (i = lo; i < hi; i = i + 1) { s = s + ua_v[i] * ua_v[i]; }
    omp_critical_enter(2);
    ua_norm = ua_norm + s;
    omp_critical_exit(2);
}

fn ua_report() {
    print_str(\"UA norm=\");
    print_float(ua_norm);
    print_str(\" VERIFIED \");
    if (ua_norm > 0.0 && ua_norm < 512.0) { print_int(1); } else { print_int(0); }
    print_char(10);
}
";

pub fn ua(model: Model) -> String {
    let main = match model {
        Model::Serial => {
            "fn main() -> int {
                let int it = 0;
                ua_init(0, 512);
                for (it = 0; it < 9; it = it + 1) {
                    if (it % 3 == 0) { ua_mesh(it); }
                    ua_smooth(0, 512);
                    ua_copy(0, 512);
                }
                ua_normf(0, 512);
                ua_report();
                return 0;
            }"
        }
        Model::Omp => {
            "fn main() -> int {
                let int it = 0;
                omp_parallel_for(fn_addr(ua_init), 0, 512);
                for (it = 0; it < 9; it = it + 1) {
                    if (it % 3 == 0) { ua_mesh(it); }
                    omp_parallel_for(fn_addr(ua_smooth), 0, 512);
                    omp_parallel_for(fn_addr(ua_copy), 0, 512);
                }
                omp_parallel_for(fn_addr(ua_normf), 0, 512);
                ua_report();
                return 0;
            }"
        }
        Model::Mpi => unreachable!("UA has no MPI variant"),
    };
    format!("{UA_COMMON}\n{main}")
}

/// DT: dataflow block shuffle — each rank pushes blocks around a ring,
/// combining checksums (communication dominated; MPI only).
pub fn dt() -> String {
    "
global float dt_blk[256];
global float dt_in[256];
global float dt_sum;

fn dt_gen(int rank) {
    let int i = 0;
    let int seed = (rank * 411 + 17) % 65537;
    for (i = 0; i < 256; i = i + 1) {
        seed = (seed * 75 + 74) % 65537;
        dt_blk[i] = float(seed) / 65537.0;
    }
}

fn dt_combine() {
    let int i = 0;
    for (i = 0; i < 256; i = i + 1) {
        dt_blk[i] = 0.5 * dt_blk[i] + 0.5 * dt_in[i];
        dt_sum = dt_sum + dt_in[i];
    }
}

fn main() -> int {
    let int r = mpi_rank();
    let int n = mpi_size();
    let int round = 0;
    let int next = (r + 1) % n;
    let int prev = (r + n - 1) % n;
    let float total = 0.0;
    dt_gen(r);
    for (round = 0; round < 4; round = round + 1) {
        mpi_send_bytes(addr_of(dt_blk), 256 * 8, next, 40 + round);
        mpi_recv_bytes(addr_of(dt_in), 256 * 8, prev, 40 + round);
        dt_combine();
    }
    total = mpi_reduce_sum_f(dt_sum);
    if (r == 0) {
        print_str(\"DT sum=\");
        print_float(total);
        print_str(\" VERIFIED \");
        if (total > 0.0) { print_int(1); } else { print_int(0); }
        print_char(10);
    }
    mpi_barrier();
    return 0;
}
"
    .to_string()
}
