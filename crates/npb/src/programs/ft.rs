//! FT: radix-2 complex FFT over rows plus inverse-transform round trip.

use crate::Model;

/// 8 rows × 64 complex points. Stage-base twiddles (`e^{-2πi/L}` for
/// L = 2..64) are hard-coded constants; per-butterfly twiddles come from
/// the rotation recurrence, exactly like a textbook iterative
/// Cooley–Tukey — heavy FP multiply/add with strided memory access.
const FT_COMMON: &str = "
global float ft_re[512];
global float ft_im[512];
global float ft_tc[6];
global float ft_ts[6];
global float ft_err;

fn ft_tables() {
    ft_tc[0] = -1.0;
    ft_ts[0] = 0.0;
    ft_tc[1] = 0.0;
    ft_ts[1] = -1.0;
    ft_tc[2] = 0.7071067811865476;
    ft_ts[2] = -0.7071067811865476;
    ft_tc[3] = 0.9238795325112867;
    ft_ts[3] = -0.3826834323650898;
    ft_tc[4] = 0.9807852804032304;
    ft_ts[4] = -0.1950903220161283;
    ft_tc[5] = 0.9951847266721969;
    ft_ts[5] = -0.0980171403295606;
}

fn ft_fill(int lo, int hi) {
    let int r = 0;
    let int i = 0;
    let int seed = 0;
    for (r = lo; r < hi; r = r + 1) {
        seed = (r * 517 + 111) % 65537;
        for (i = 0; i < 64; i = i + 1) {
            seed = (seed * 75 + 74) % 65537;
            ft_re[r * 64 + i] = float(seed) / 65537.0 - 0.5;
            ft_im[r * 64 + i] = 0.0;
        }
    }
}

fn ft_row(int base, int inv) {
    let int i = 0;
    let int j = 0;
    let int bit = 0;
    let int stage = 0;
    let int half = 0;
    let int k = 0;
    let int m = 0;
    let int i1 = 0;
    let int i2 = 0;
    let float wr = 0.0;
    let float wi = 0.0;
    let float twr = 0.0;
    let float twi = 0.0;
    let float tr = 0.0;
    let float ti = 0.0;
    let float t = 0.0;
    /* bit-reversal permutation over 6 bits */
    for (i = 0; i < 64; i = i + 1) {
        j = 0;
        for (bit = 0; bit < 6; bit = bit + 1) {
            j = j * 2 + ((i >> bit) & 1);
        }
        if (j > i) {
            t = ft_re[base + i];
            ft_re[base + i] = ft_re[base + j];
            ft_re[base + j] = t;
            t = ft_im[base + i];
            ft_im[base + i] = ft_im[base + j];
            ft_im[base + j] = t;
        }
    }
    /* butterflies */
    for (stage = 0; stage < 6; stage = stage + 1) {
        half = 1 << stage;
        twr = ft_tc[stage];
        twi = ft_ts[stage];
        if (inv == 1) { twi = -twi; }
        for (k = 0; k < 64; k = k + 2 * half) {
            wr = 1.0;
            wi = 0.0;
            for (m = 0; m < half; m = m + 1) {
                i1 = base + k + m;
                i2 = i1 + half;
                tr = wr * ft_re[i2] - wi * ft_im[i2];
                ti = wr * ft_im[i2] + wi * ft_re[i2];
                ft_re[i2] = ft_re[i1] - tr;
                ft_im[i2] = ft_im[i1] - ti;
                ft_re[i1] = ft_re[i1] + tr;
                ft_im[i1] = ft_im[i1] + ti;
                t = wr * twr - wi * twi;
                wi = wr * twi + wi * twr;
                wr = t;
            }
        }
    }
    if (inv == 1) {
        for (i = 0; i < 64; i = i + 1) {
            ft_re[base + i] = ft_re[base + i] / 64.0;
            ft_im[base + i] = ft_im[base + i] / 64.0;
        }
    }
}

fn ft_fwd(int lo, int hi) {
    let int r = 0;
    for (r = lo; r < hi; r = r + 1) { ft_row(r * 64, 0); }
}

fn ft_inv(int lo, int hi) {
    let int r = 0;
    for (r = lo; r < hi; r = r + 1) { ft_row(r * 64, 1); }
}

/* round-trip error against the regenerated input */
fn ft_check(int lo, int hi) {
    let int r = 0;
    let int i = 0;
    let int seed = 0;
    let float e = 0.0;
    let float d = 0.0;
    for (r = lo; r < hi; r = r + 1) {
        seed = (r * 517 + 111) % 65537;
        for (i = 0; i < 64; i = i + 1) {
            seed = (seed * 75 + 74) % 65537;
            d = fabs(ft_re[r * 64 + i] - (float(seed) / 65537.0 - 0.5));
            if (d > e) { e = d; }
            d = fabs(ft_im[r * 64 + i]);
            if (d > e) { e = d; }
        }
    }
    omp_critical_enter(11);
    if (e > ft_err) { ft_err = e; }
    omp_critical_exit(11);
}

fn ft_report() {
    print_str(\"FT err=\");
    print_float(ft_err);
    print_str(\" VERIFIED \");
    if (ft_err < 0.02) { print_int(1); } else { print_int(0); }
    print_char(10);
}
";

pub fn ft(model: Model) -> String {
    let main = match model {
        Model::Serial => {
            "fn main() -> int {
                ft_tables();
                ft_fill(0, 8);
                ft_fwd(0, 8);
                ft_inv(0, 8);
                ft_check(0, 8);
                ft_report();
                return 0;
            }"
        }
        Model::Omp => {
            "fn main() -> int {
                ft_tables();
                omp_parallel_for(fn_addr(ft_fill), 0, 8);
                omp_parallel_for(fn_addr(ft_fwd), 0, 8);
                omp_parallel_for(fn_addr(ft_inv), 0, 8);
                omp_parallel_for(fn_addr(ft_check), 0, 8);
                ft_report();
                return 0;
            }"
        }
        Model::Mpi => {
            // Each rank transforms its rows, ships the spectrum around
            // the ring (the all-to-all stand-in), inverse-transforms the
            // received block and returns it to its owner for the check.
            "fn main() -> int {
                let int r = mpi_rank();
                let int n = mpi_size();
                let int per = 8 / n;
                let int lo = r * per;
                let int next = (r + 1) % n;
                let int prev = (r + n - 1) % n;
                let int plo = prev * per;
                ft_tables();
                ft_fill(lo, lo + per);
                ft_fwd(lo, lo + per);
                mpi_send_bytes(addr_of(ft_re) + lo * 64 * 8, per * 64 * 8, next, 61);
                mpi_send_bytes(addr_of(ft_im) + lo * 64 * 8, per * 64 * 8, next, 62);
                mpi_recv_bytes(addr_of(ft_re) + plo * 64 * 8, per * 64 * 8, prev, 61);
                mpi_recv_bytes(addr_of(ft_im) + plo * 64 * 8, per * 64 * 8, prev, 62);
                ft_inv(plo, plo + per);
                mpi_send_bytes(addr_of(ft_re) + plo * 64 * 8, per * 64 * 8, prev, 63);
                mpi_send_bytes(addr_of(ft_im) + plo * 64 * 8, per * 64 * 8, prev, 64);
                mpi_recv_bytes(addr_of(ft_re) + lo * 64 * 8, per * 64 * 8, next, 63);
                mpi_recv_bytes(addr_of(ft_im) + lo * 64 * 8, per * 64 * 8, next, 64);
                ft_check(lo, lo + per);
                ft_err = mpi_allreduce_max_f(ft_err);
                if (r == 0) { ft_report(); }
                mpi_barrier();
                return 0;
            }"
        }
    };
    format!("{FT_COMMON}\n{main}")
}
