//! LU, SP and BT — the structured-grid solver kernels.

use crate::Model;

/// LU: SSOR-style Gauss–Seidel sweeps (forward + reverse) on a 24×24
/// 5-point Poisson grid (FP + memory; the paper's Table 4 subject).
///
/// Cell `(r, c)` with interior coordinates `0..24` lives at slot
/// `(r + 1) * 26 + (c + 1)`; the one-cell pad ring stays zero.
const LU_COMMON: &str = "
global float lu_u[676];
global float lu_f[676];
global float lu_norm;

fn lu_init(int lo, int hi) {
    let int r = 0;
    let int c = 0;
    for (r = lo; r < hi; r = r + 1) {
        for (c = 0; c < 24; c = c + 1) {
            lu_u[(r + 1) * 26 + c + 1] = 0.0;
            lu_f[(r + 1) * 26 + c + 1] = float(((r * 5 + c * 3) % 17)) / 17.0 - 0.4;
        }
    }
}

fn lu_sweep(int lo, int hi) {
    let int r = 0;
    let int c = 0;
    let int k = 0;
    for (r = lo; r < hi; r = r + 1) {
        for (c = 0; c < 24; c = c + 1) {
            k = (r + 1) * 26 + c + 1;
            lu_u[k] = 0.25 * (lu_u[k - 26] + lu_u[k + 26] + lu_u[k - 1] + lu_u[k + 1] + lu_f[k]);
        }
    }
}

fn lu_sweep_rev(int lo, int hi) {
    let int r = 0;
    let int c = 0;
    let int k = 0;
    for (r = hi - 1; r >= lo; r = r - 1) {
        for (c = 23; c >= 0; c = c - 1) {
            k = (r + 1) * 26 + c + 1;
            lu_u[k] = 0.25 * (lu_u[k - 26] + lu_u[k + 26] + lu_u[k - 1] + lu_u[k + 1] + lu_f[k]);
        }
    }
}

fn lu_resid(int lo, int hi) {
    let int r = 0;
    let int c = 0;
    let int k = 0;
    let float s = 0.0;
    let float e = 0.0;
    for (r = lo; r < hi; r = r + 1) {
        for (c = 0; c < 24; c = c + 1) {
            k = (r + 1) * 26 + c + 1;
            e = lu_f[k] - 4.0 * lu_u[k] + lu_u[k - 26] + lu_u[k + 26] + lu_u[k - 1] + lu_u[k + 1];
            s = s + e * e;
        }
    }
    omp_critical_enter(8);
    lu_norm = lu_norm + s;
    omp_critical_exit(8);
}

fn lu_report(float norm0, float norm1) {
    print_str(\"LU r0=\");
    print_float(norm0);
    print_str(\" r1=\");
    print_float(norm1);
    print_str(\" VERIFIED \");
    if (norm1 < norm0 * 0.5 && norm1 >= 0.0) { print_int(1); } else { print_int(0); }
    print_char(10);
}
";

pub fn lu(model: Model) -> String {
    let main = match model {
        Model::Serial => {
            "fn main() -> int {
                let int it = 0;
                let float norm0 = 0.0;
                lu_init(0, 24);
                lu_norm = 0.0;
                lu_resid(0, 24);
                norm0 = lu_norm;
                for (it = 0; it < 8; it = it + 1) {
                    lu_sweep(0, 24);
                    lu_sweep_rev(0, 24);
                }
                lu_norm = 0.0;
                lu_resid(0, 24);
                lu_report(norm0, lu_norm);
                return 0;
            }"
        }
        Model::Omp => {
            "fn main() -> int {
                let int it = 0;
                let float norm0 = 0.0;
                omp_parallel_for(fn_addr(lu_init), 0, 24);
                lu_norm = 0.0;
                omp_parallel_for(fn_addr(lu_resid), 0, 24);
                norm0 = lu_norm;
                for (it = 0; it < 8; it = it + 1) {
                    omp_parallel_for(fn_addr(lu_sweep), 0, 24);
                    omp_parallel_for(fn_addr(lu_sweep_rev), 0, 24);
                }
                lu_norm = 0.0;
                omp_parallel_for(fn_addr(lu_resid), 0, 24);
                lu_report(norm0, lu_norm);
                return 0;
            }"
        }
        Model::Mpi => {
            "global int lu_lo;
            global int lu_hi;

            fn lu_halo() {
                let int r = mpi_rank();
                let int n = mpi_size();
                if (r > 0) {
                    mpi_send_bytes(addr_of(lu_u) + ((lu_lo + 1) * 26) * 8, 26 * 8, r - 1, 51);
                }
                if (r < n - 1) {
                    mpi_send_bytes(addr_of(lu_u) + (lu_hi * 26) * 8, 26 * 8, r + 1, 52);
                    mpi_recv_bytes(addr_of(lu_u) + ((lu_hi + 1) * 26) * 8, 26 * 8, r + 1, 51);
                }
                if (r > 0) {
                    mpi_recv_bytes(addr_of(lu_u) + (lu_lo * 26) * 8, 26 * 8, r - 1, 52);
                }
            }

            fn main() -> int {
                let int r = mpi_rank();
                let int n = mpi_size();
                let int it = 0;
                let float norm0 = 0.0;
                let int per = 24 / n;
                lu_lo = r * per;
                lu_hi = lu_lo + per;
                if (r == n - 1) { lu_hi = 24; }
                lu_init(lu_lo, lu_hi);
                lu_halo();
                lu_norm = 0.0;
                lu_resid(lu_lo, lu_hi);
                norm0 = mpi_allreduce_sum_f(lu_norm);
                for (it = 0; it < 8; it = it + 1) {
                    lu_halo();
                    lu_sweep(lu_lo, lu_hi);
                    lu_halo();
                    lu_sweep_rev(lu_lo, lu_hi);
                }
                lu_halo();
                lu_norm = 0.0;
                lu_resid(lu_lo, lu_hi);
                lu_norm = mpi_allreduce_sum_f(lu_norm);
                if (r == 0) { lu_report(norm0, lu_norm); }
                mpi_barrier();
                return 0;
            }"
        }
    };
    format!("{LU_COMMON}\n{main}")
}

/// SP: scalar tridiagonal (Thomas) line solves along the rows of a
/// 24×24 grid, re-coupled between iterations through the row neighbours
/// (FP-dominated with per-row sequential recurrences).
///
/// `sp_u[r * 26 + c + 1]` holds cell `(r, c)`; each row owns a private
/// slice of the `sp_cp`/`sp_dp` scratch arrays so row solves can run in
/// parallel.
const SP_COMMON: &str = "
global float sp_u[624];
global float sp_rhs[624];
global float sp_cp[624];
global float sp_dp[624];
global float sp_sum;

fn sp_init(int lo, int hi) {
    let int r = 0;
    let int c = 0;
    for (r = lo; r < hi; r = r + 1) {
        for (c = 0; c < 24; c = c + 1) {
            sp_u[r * 26 + c + 1] = 0.0;
            sp_rhs[r * 26 + c + 1] = float(((r * 7 + c) % 13)) / 13.0;
        }
    }
}

fn sp_couple(int lo, int hi) {
    let int r = 0;
    let int c = 0;
    let int k = 0;
    let float up = 0.0;
    let float dn = 0.0;
    for (r = lo; r < hi; r = r + 1) {
        for (c = 0; c < 24; c = c + 1) {
            k = r * 26 + c + 1;
            up = 0.0;
            dn = 0.0;
            if (r > 0) { up = sp_u[k - 26]; }
            if (r < 23) { dn = sp_u[k + 26]; }
            sp_rhs[k] = float(((r * 7 + c) % 13)) / 13.0 + 0.25 * (up + dn);
        }
    }
}

fn sp_solve(int lo, int hi) {
    let int r = 0;
    let int c = 0;
    let int k = 0;
    let float m = 0.0;
    for (r = lo; r < hi; r = r + 1) {
        k = r * 26 + 1;
        sp_cp[k] = -1.0 / 2.5;
        sp_dp[k] = sp_rhs[k] / 2.5;
        for (c = 1; c < 24; c = c + 1) {
            k = r * 26 + c + 1;
            m = 2.5 - (-1.0) * sp_cp[k - 1];
            sp_cp[k] = -1.0 / m;
            sp_dp[k] = (sp_rhs[k] - (-1.0) * sp_dp[k - 1]) / m;
        }
        k = r * 26 + 24;
        sp_u[k] = sp_dp[k];
        for (c = 22; c >= 0; c = c - 1) {
            k = r * 26 + c + 1;
            sp_u[k] = sp_dp[k] - sp_cp[k] * sp_u[k + 1];
        }
    }
}

fn sp_sumf(int lo, int hi) {
    let int r = 0;
    let int c = 0;
    let float s = 0.0;
    for (r = lo; r < hi; r = r + 1) {
        for (c = 0; c < 24; c = c + 1) {
            s = s + fabs(sp_u[r * 26 + c + 1]);
        }
    }
    omp_critical_enter(9);
    sp_sum = sp_sum + s;
    omp_critical_exit(9);
}

fn sp_report() {
    print_str(\"SP sum=\");
    print_float(sp_sum);
    print_str(\" VERIFIED \");
    if (sp_sum > 1.0 && sp_sum < 10000.0) { print_int(1); } else { print_int(0); }
    print_char(10);
}
";

pub fn sp(model: Model) -> String {
    let main = match model {
        Model::Serial => {
            "fn main() -> int {
                let int it = 0;
                sp_init(0, 24);
                for (it = 0; it < 6; it = it + 1) {
                    sp_couple(0, 24);
                    sp_solve(0, 24);
                }
                sp_sum = 0.0;
                sp_sumf(0, 24);
                sp_report();
                return 0;
            }"
        }
        Model::Omp => {
            "fn main() -> int {
                let int it = 0;
                omp_parallel_for(fn_addr(sp_init), 0, 24);
                for (it = 0; it < 6; it = it + 1) {
                    omp_parallel_for(fn_addr(sp_couple), 0, 24);
                    omp_parallel_for(fn_addr(sp_solve), 0, 24);
                }
                sp_sum = 0.0;
                omp_parallel_for(fn_addr(sp_sumf), 0, 24);
                sp_report();
                return 0;
            }"
        }
        Model::Mpi => {
            // Row decomposition (24 % ranks == 0 for 1 and 4; the 2-rank
            // variant does not exist, as in the paper). The coupling halo
            // is one row in each direction.
            "global int sp_lo;
            global int sp_hi;

            fn sp_halo() {
                let int r = mpi_rank();
                let int n = mpi_size();
                if (r > 0) {
                    mpi_send_bytes(addr_of(sp_u) + (sp_lo * 26) * 8, 26 * 8, r - 1, 53);
                }
                if (r < n - 1) {
                    mpi_send_bytes(addr_of(sp_u) + ((sp_hi - 1) * 26) * 8, 26 * 8, r + 1, 54);
                    mpi_recv_bytes(addr_of(sp_u) + (sp_hi * 26) * 8, 26 * 8, r + 1, 53);
                }
                if (r > 0) {
                    mpi_recv_bytes(addr_of(sp_u) + ((sp_lo - 1) * 26) * 8, 26 * 8, r - 1, 54);
                }
            }

            fn main() -> int {
                let int r = mpi_rank();
                let int n = mpi_size();
                let int it = 0;
                let int per = 24 / n;
                sp_lo = r * per;
                sp_hi = sp_lo + per;
                if (r == n - 1) { sp_hi = 24; }
                sp_init(sp_lo, sp_hi);
                for (it = 0; it < 6; it = it + 1) {
                    sp_halo();
                    sp_couple(sp_lo, sp_hi);
                    sp_solve(sp_lo, sp_hi);
                }
                sp_sum = 0.0;
                sp_sumf(sp_lo, sp_hi);
                sp_sum = mpi_allreduce_sum_f(sp_sum);
                if (r == 0) { sp_report(); }
                mpi_barrier();
                return 0;
            }"
        }
    };
    format!("{SP_COMMON}\n{main}")
}

/// BT: 2×2 block tridiagonal Thomas solves along the rows of a 16×16
/// grid — the densest FP kernel (block multiplies and 2×2 inversions
/// per cell).
///
/// Cell `(r, c)` has two unknowns stored at `bt_u[(r * 16 + c) * 2]`
/// and `+1`; scratch blocks `bt_cp` (2×2 per cell) and vectors `bt_dp`
/// are row-private.
const BT_COMMON: &str = "
global float bt_u[512];
global float bt_rhs[512];
global float bt_cp[1024];
global float bt_dp[512];
global float bt_sum;

fn bt_init(int lo, int hi) {
    let int r = 0;
    let int c = 0;
    let int k = 0;
    for (r = lo; r < hi; r = r + 1) {
        for (c = 0; c < 16; c = c + 1) {
            k = (r * 16 + c) * 2;
            bt_u[k] = 0.0;
            bt_u[k + 1] = 0.0;
            bt_rhs[k] = float(((r * 3 + c) % 11)) / 11.0;
            bt_rhs[k + 1] = float(((r + c * 5) % 11)) / 11.0 - 0.5;
        }
    }
}

fn bt_couple(int lo, int hi) {
    let int r = 0;
    let int c = 0;
    let int k = 0;
    let float u0 = 0.0;
    let float u1 = 0.0;
    for (r = lo; r < hi; r = r + 1) {
        for (c = 0; c < 16; c = c + 1) {
            k = (r * 16 + c) * 2;
            u0 = 0.0;
            u1 = 0.0;
            if (r > 0) { u0 = u0 + bt_u[k - 32]; u1 = u1 + bt_u[k - 31]; }
            if (r < 15) { u0 = u0 + bt_u[k + 32]; u1 = u1 + bt_u[k + 33]; }
            bt_rhs[k] = float(((r * 3 + c) % 11)) / 11.0 + 0.2 * u0 + 0.05 * u1;
            bt_rhs[k + 1] = float(((r + c * 5) % 11)) / 11.0 - 0.5 + 0.05 * u0 + 0.2 * u1;
        }
    }
}

/* Block-tridiagonal Thomas along each row with constant blocks
   A = -0.8 I (sub), B = [[3, 0.5], [0.5, 3]] (diag), C = -0.9 I (super).
   Forward: M = B + 0.8 * CPprev ... using 2x2 inverses computed inline. */
fn bt_solve(int lo, int hi) {
    let int r = 0;
    let int c = 0;
    let int k = 0;
    let int kb = 0;
    let float m00 = 0.0;
    let float m01 = 0.0;
    let float m10 = 0.0;
    let float m11 = 0.0;
    let float det = 0.0;
    let float i00 = 0.0;
    let float i01 = 0.0;
    let float i10 = 0.0;
    let float i11 = 0.0;
    let float d0 = 0.0;
    let float d1 = 0.0;
    for (r = lo; r < hi; r = r + 1) {
        for (c = 0; c < 16; c = c + 1) {
            k = (r * 16 + c) * 2;
            kb = (r * 16 + c) * 4;
            /* M = B - A * CP[c-1]  (A = -0.8 I -> M = B + 0.8 CPprev) */
            m00 = 3.0;
            m01 = 0.5;
            m10 = 0.5;
            m11 = 3.0;
            d0 = bt_rhs[k];
            d1 = bt_rhs[k + 1];
            if (c > 0) {
                m00 = m00 + 0.8 * bt_cp[kb - 4];
                m01 = m01 + 0.8 * bt_cp[kb - 3];
                m10 = m10 + 0.8 * bt_cp[kb - 2];
                m11 = m11 + 0.8 * bt_cp[kb - 1];
                d0 = d0 + 0.8 * bt_dp[k - 2];
                d1 = d1 + 0.8 * bt_dp[k - 1];
            }
            det = m00 * m11 - m01 * m10;
            i00 = m11 / det;
            i01 = 0.0 - m01 / det;
            i10 = 0.0 - m10 / det;
            i11 = m00 / det;
            /* CP[c] = Minv * C = Minv * (-0.9 I) */
            bt_cp[kb] = -0.9 * i00;
            bt_cp[kb + 1] = -0.9 * i01;
            bt_cp[kb + 2] = -0.9 * i10;
            bt_cp[kb + 3] = -0.9 * i11;
            /* DP[c] = Minv * d */
            bt_dp[k] = i00 * d0 + i01 * d1;
            bt_dp[k + 1] = i10 * d0 + i11 * d1;
        }
        /* back substitution: u[last] = dp[last]; u[c] = dp[c] - CP[c] u[c+1] */
        k = (r * 16 + 15) * 2;
        bt_u[k] = bt_dp[k];
        bt_u[k + 1] = bt_dp[k + 1];
        for (c = 14; c >= 0; c = c - 1) {
            k = (r * 16 + c) * 2;
            kb = (r * 16 + c) * 4;
            bt_u[k] = bt_dp[k] - (bt_cp[kb] * bt_u[k + 2] + bt_cp[kb + 1] * bt_u[k + 3]);
            bt_u[k + 1] = bt_dp[k + 1] - (bt_cp[kb + 2] * bt_u[k + 2] + bt_cp[kb + 3] * bt_u[k + 3]);
        }
    }
}

fn bt_sumf(int lo, int hi) {
    let int r = 0;
    let int c = 0;
    let int k = 0;
    let float s = 0.0;
    for (r = lo; r < hi; r = r + 1) {
        for (c = 0; c < 16; c = c + 1) {
            k = (r * 16 + c) * 2;
            s = s + fabs(bt_u[k]) + fabs(bt_u[k + 1]);
        }
    }
    omp_critical_enter(10);
    bt_sum = bt_sum + s;
    omp_critical_exit(10);
}

fn bt_report() {
    print_str(\"BT sum=\");
    print_float(bt_sum);
    print_str(\" VERIFIED \");
    if (bt_sum > 0.1 && bt_sum < 5000.0) { print_int(1); } else { print_int(0); }
    print_char(10);
}
";

pub fn bt(model: Model) -> String {
    let main = match model {
        Model::Serial => {
            "fn main() -> int {
                let int it = 0;
                bt_init(0, 16);
                for (it = 0; it < 4; it = it + 1) {
                    bt_couple(0, 16);
                    bt_solve(0, 16);
                }
                bt_sum = 0.0;
                bt_sumf(0, 16);
                bt_report();
                return 0;
            }"
        }
        Model::Omp => {
            "fn main() -> int {
                let int it = 0;
                omp_parallel_for(fn_addr(bt_init), 0, 16);
                for (it = 0; it < 4; it = it + 1) {
                    omp_parallel_for(fn_addr(bt_couple), 0, 16);
                    omp_parallel_for(fn_addr(bt_solve), 0, 16);
                }
                bt_sum = 0.0;
                omp_parallel_for(fn_addr(bt_sumf), 0, 16);
                bt_report();
                return 0;
            }"
        }
        Model::Mpi => {
            // Row decomposition over 16 rows (1 or 4 ranks; no 2-rank
            // variant, as in the paper's note).
            "global int bt_lo;
            global int bt_hi;

            fn bt_halo() {
                let int r = mpi_rank();
                let int n = mpi_size();
                if (r > 0) {
                    mpi_send_bytes(addr_of(bt_u) + (bt_lo * 16 * 2) * 8, 32 * 8, r - 1, 55);
                }
                if (r < n - 1) {
                    mpi_send_bytes(addr_of(bt_u) + ((bt_hi - 1) * 16 * 2) * 8, 32 * 8, r + 1, 56);
                    mpi_recv_bytes(addr_of(bt_u) + (bt_hi * 16 * 2) * 8, 32 * 8, r + 1, 55);
                }
                if (r > 0) {
                    mpi_recv_bytes(addr_of(bt_u) + ((bt_lo - 1) * 16 * 2) * 8, 32 * 8, r - 1, 56);
                }
            }

            fn main() -> int {
                let int r = mpi_rank();
                let int n = mpi_size();
                let int it = 0;
                let int per = 16 / n;
                bt_lo = r * per;
                bt_hi = bt_lo + per;
                if (r == n - 1) { bt_hi = 16; }
                bt_init(bt_lo, bt_hi);
                for (it = 0; it < 4; it = it + 1) {
                    bt_halo();
                    bt_couple(bt_lo, bt_hi);
                    bt_solve(bt_lo, bt_hi);
                }
                bt_sum = 0.0;
                bt_sumf(bt_lo, bt_hi);
                bt_sum = mpi_allreduce_sum_f(bt_sum);
                if (r == 0) { bt_report(); }
                mpi_barrier();
                return 0;
            }"
        }
    };
    format!("{BT_COMMON}\n{main}")
}
