//! CG and MG — the linear-algebra kernels.

use crate::Model;

/// CG: conjugate gradient on a pentadiagonal SPD operator, n = 128,
/// 10 iterations (FP + dot products; the per-iteration reductions are
/// the parallel-API exposure).
///
/// Interior element `i` (0..128) lives at array slot `i + 2`; two
/// zero-padding slots on each side absorb the stencil ends.
const CG_COMMON: &str = "
global float cg_x[132];
global float cg_r[132];
global float cg_p[132];
global float cg_q[132];
global float cg_dot;
global float cg_rho0;
global float cg_rho;
global float cg_alpha;
global float cg_beta;

fn cg_init(int lo, int hi) {
    let int i = 0;
    for (i = lo; i < hi; i = i + 1) {
        cg_x[i + 2] = 0.0;
        cg_r[i + 2] = 1.0;
        cg_p[i + 2] = 1.0;
    }
}

fn cg_matvec(int lo, int hi) {
    let int i = 0;
    for (i = lo; i < hi; i = i + 1) {
        cg_q[i + 2] = 4.0 * cg_p[i + 2]
            - cg_p[i + 1] - cg_p[i + 3]
            - 0.3 * cg_p[i] - 0.3 * cg_p[i + 4];
    }
}

fn cg_dot_pq(int lo, int hi) {
    let int i = 0;
    let float s = 0.0;
    for (i = lo; i < hi; i = i + 1) { s = s + cg_p[i + 2] * cg_q[i + 2]; }
    omp_critical_enter(5);
    cg_dot = cg_dot + s;
    omp_critical_exit(5);
}

fn cg_dot_rr(int lo, int hi) {
    let int i = 0;
    let float s = 0.0;
    for (i = lo; i < hi; i = i + 1) { s = s + cg_r[i + 2] * cg_r[i + 2]; }
    omp_critical_enter(6);
    cg_dot = cg_dot + s;
    omp_critical_exit(6);
}

fn cg_update_xr(int lo, int hi) {
    let int i = 0;
    for (i = lo; i < hi; i = i + 1) {
        cg_x[i + 2] = cg_x[i + 2] + cg_alpha * cg_p[i + 2];
        cg_r[i + 2] = cg_r[i + 2] - cg_alpha * cg_q[i + 2];
    }
}

fn cg_update_p(int lo, int hi) {
    let int i = 0;
    for (i = lo; i < hi; i = i + 1) {
        cg_p[i + 2] = cg_r[i + 2] + cg_beta * cg_p[i + 2];
    }
}

fn cg_report() {
    print_str(\"CG rho0=\");
    print_float(cg_rho0);
    print_str(\" rho=\");
    print_float(cg_rho);
    print_str(\" VERIFIED \");
    if (cg_rho < cg_rho0 * 0.05 && cg_rho >= 0.0) { print_int(1); } else { print_int(0); }
    print_char(10);
}
";

pub fn cg(model: Model) -> String {
    let main = match model {
        Model::Serial => {
            "fn main() -> int {
                let int it = 0;
                let float rho_old = 0.0;
                cg_init(0, 128);
                cg_dot = 0.0;
                cg_dot_rr(0, 128);
                cg_rho = cg_dot;
                cg_rho0 = cg_rho;
                for (it = 0; it < 10; it = it + 1) {
                    cg_matvec(0, 128);
                    cg_dot = 0.0;
                    cg_dot_pq(0, 128);
                    cg_alpha = cg_rho / cg_dot;
                    cg_update_xr(0, 128);
                    rho_old = cg_rho;
                    cg_dot = 0.0;
                    cg_dot_rr(0, 128);
                    cg_rho = cg_dot;
                    cg_beta = cg_rho / rho_old;
                    cg_update_p(0, 128);
                }
                cg_report();
                return 0;
            }"
        }
        Model::Omp => {
            "fn main() -> int {
                let int it = 0;
                let float rho_old = 0.0;
                omp_parallel_for(fn_addr(cg_init), 0, 128);
                cg_dot = 0.0;
                omp_parallel_for(fn_addr(cg_dot_rr), 0, 128);
                cg_rho = cg_dot;
                cg_rho0 = cg_rho;
                for (it = 0; it < 10; it = it + 1) {
                    omp_parallel_for(fn_addr(cg_matvec), 0, 128);
                    cg_dot = 0.0;
                    omp_parallel_for(fn_addr(cg_dot_pq), 0, 128);
                    cg_alpha = cg_rho / cg_dot;
                    omp_parallel_for(fn_addr(cg_update_xr), 0, 128);
                    rho_old = cg_rho;
                    cg_dot = 0.0;
                    omp_parallel_for(fn_addr(cg_dot_rr), 0, 128);
                    cg_rho = cg_dot;
                    cg_beta = cg_rho / rho_old;
                    omp_parallel_for(fn_addr(cg_update_p), 0, 128);
                }
                cg_report();
                return 0;
            }"
        }
        Model::Mpi => {
            "global int cg_lo;
            global int cg_hi;

            fn cg_halo() {
                let int r = mpi_rank();
                let int n = mpi_size();
                if (r > 0) {
                    mpi_send_bytes(addr_of(cg_p) + (cg_lo + 2) * 8, 16, r - 1, 31);
                }
                if (r < n - 1) {
                    mpi_send_bytes(addr_of(cg_p) + cg_hi * 8, 16, r + 1, 32);
                    mpi_recv_bytes(addr_of(cg_p) + (cg_hi + 2) * 8, 16, r + 1, 31);
                }
                if (r > 0) {
                    mpi_recv_bytes(addr_of(cg_p) + cg_lo * 8, 16, r - 1, 32);
                }
            }

            fn main() -> int {
                let int r = mpi_rank();
                let int n = mpi_size();
                let int it = 0;
                let float rho_old = 0.0;
                let int per = 128 / n;
                cg_lo = r * per;
                cg_hi = cg_lo + per;
                if (r == n - 1) { cg_hi = 128; }
                cg_init(cg_lo, cg_hi);
                cg_dot = 0.0;
                cg_dot_rr(cg_lo, cg_hi);
                cg_rho = mpi_allreduce_sum_f(cg_dot);
                cg_rho0 = cg_rho;
                for (it = 0; it < 10; it = it + 1) {
                    cg_halo();
                    cg_matvec(cg_lo, cg_hi);
                    cg_dot = 0.0;
                    cg_dot_pq(cg_lo, cg_hi);
                    cg_alpha = cg_rho / mpi_allreduce_sum_f(cg_dot);
                    cg_update_xr(cg_lo, cg_hi);
                    rho_old = cg_rho;
                    cg_dot = 0.0;
                    cg_dot_rr(cg_lo, cg_hi);
                    cg_rho = mpi_allreduce_sum_f(cg_dot);
                    cg_beta = cg_rho / rho_old;
                    cg_update_p(cg_lo, cg_hi);
                }
                if (r == 0) { cg_report(); }
                mpi_barrier();
                return 0;
            }"
        }
    };
    format!("{CG_COMMON}\n{main}")
}

/// MG: 1-D multigrid V-cycles on a 128-point Poisson problem with one
/// coarse level (memory-transaction heavy — the paper's Table 3 subject).
///
/// Fine interior points are 1..=128 (slots 0 and 129 are boundary pads);
/// coarse interior points are 1..=64. Chunk functions take interior
/// ranges `[lo, hi)` in 0-based interior coordinates.
const MG_COMMON: &str = "
global float mg_u[130];
global float mg_f[130];
global float mg_r[130];
global float mg_uc[66];
global float mg_rc[66];
global float mg_norm;

fn mg_init(int lo, int hi) {
    let int i = 0;
    for (i = lo; i < hi; i = i + 1) {
        mg_u[i + 1] = 0.0;
        mg_f[i + 1] = float((i * 37) % 19) / 19.0 - 0.5;
    }
}

fn mg_smooth(int lo, int hi) {
    let int i = 0;
    for (i = lo; i < hi; i = i + 1) {
        mg_u[i + 1] = 0.5 * (mg_u[i] + mg_u[i + 2] + mg_f[i + 1]);
    }
}

fn mg_resid(int lo, int hi) {
    let int i = 0;
    for (i = lo; i < hi; i = i + 1) {
        mg_r[i + 1] = mg_f[i + 1] - 2.0 * mg_u[i + 1] + mg_u[i] + mg_u[i + 2];
    }
}

fn mg_restrict(int lo, int hi) {
    let int i = 0;
    let int c = 0;
    for (i = lo; i < hi; i = i + 1) {
        c = i + 1;
        mg_rc[c] = 0.25 * (mg_r[2 * c - 1] + 2.0 * mg_r[2 * c] + mg_r[2 * c + 1]);
    }
}

fn mg_zero_coarse(int lo, int hi) {
    let int i = 0;
    for (i = lo; i < hi; i = i + 1) { mg_uc[i + 1] = 0.0; }
}

fn mg_smooth_coarse(int lo, int hi) {
    let int i = 0;
    for (i = lo; i < hi; i = i + 1) {
        mg_uc[i + 1] = 0.5 * (mg_uc[i] + mg_uc[i + 2] + mg_rc[i + 1]);
    }
}

fn mg_prolong(int lo, int hi) {
    let int i = 0;
    let int c = 0;
    for (i = lo; i < hi; i = i + 1) {
        c = i + 1;
        mg_u[2 * c] = mg_u[2 * c] + mg_uc[c];
        mg_u[2 * c - 1] = mg_u[2 * c - 1] + 0.5 * (mg_uc[c] + mg_uc[c - 1]);
    }
}

fn mg_normf(int lo, int hi) {
    let int i = 0;
    let float s = 0.0;
    for (i = lo; i < hi; i = i + 1) { s = s + mg_r[i + 1] * mg_r[i + 1]; }
    omp_critical_enter(7);
    mg_norm = mg_norm + s;
    omp_critical_exit(7);
}

fn mg_report(float norm0, float norm1) {
    print_str(\"MG r0=\");
    print_float(norm0);
    print_str(\" r1=\");
    print_float(norm1);
    print_str(\" VERIFIED \");
    if (norm1 < norm0 * 0.5 && norm1 >= 0.0) { print_int(1); } else { print_int(0); }
    print_char(10);
}
";

pub fn mg(model: Model) -> String {
    let main = match model {
        Model::Serial => {
            "fn main() -> int {
                let int cycle = 0;
                let int s = 0;
                let float norm0 = 0.0;
                mg_init(0, 128);
                mg_resid(0, 128);
                mg_norm = 0.0;
                mg_normf(0, 128);
                norm0 = mg_norm;
                for (cycle = 0; cycle < 4; cycle = cycle + 1) {
                    mg_smooth(0, 128);
                    mg_smooth(0, 128);
                    mg_resid(0, 128);
                    mg_restrict(0, 64);
                    mg_zero_coarse(0, 64);
                    for (s = 0; s < 4; s = s + 1) { mg_smooth_coarse(0, 64); }
                    mg_prolong(0, 64);
                    mg_smooth(0, 128);
                }
                mg_resid(0, 128);
                mg_norm = 0.0;
                mg_normf(0, 128);
                mg_report(norm0, mg_norm);
                return 0;
            }"
        }
        Model::Omp => {
            "fn main() -> int {
                let int cycle = 0;
                let int s = 0;
                let float norm0 = 0.0;
                omp_parallel_for(fn_addr(mg_init), 0, 128);
                omp_parallel_for(fn_addr(mg_resid), 0, 128);
                mg_norm = 0.0;
                omp_parallel_for(fn_addr(mg_normf), 0, 128);
                norm0 = mg_norm;
                for (cycle = 0; cycle < 4; cycle = cycle + 1) {
                    omp_parallel_for(fn_addr(mg_smooth), 0, 128);
                    omp_parallel_for(fn_addr(mg_smooth), 0, 128);
                    omp_parallel_for(fn_addr(mg_resid), 0, 128);
                    omp_parallel_for(fn_addr(mg_restrict), 0, 64);
                    omp_parallel_for(fn_addr(mg_zero_coarse), 0, 64);
                    for (s = 0; s < 4; s = s + 1) { mg_smooth_coarse(0, 64); }
                    omp_parallel_for(fn_addr(mg_prolong), 0, 64);
                    omp_parallel_for(fn_addr(mg_smooth), 0, 128);
                }
                omp_parallel_for(fn_addr(mg_resid), 0, 128);
                mg_norm = 0.0;
                omp_parallel_for(fn_addr(mg_normf), 0, 128);
                mg_report(norm0, mg_norm);
                return 0;
            }"
        }
        Model::Mpi => {
            // Fine-level work is rank-decomposed with one-element halo
            // exchanges; the coarse level runs on rank 0 (gather residual,
            // coarse-smooth, broadcast the correction).
            "global int mg_lo;
            global int mg_hi;
            global float mg_rtmp[130];

            fn mg_halo_u() {
                let int r = mpi_rank();
                let int n = mpi_size();
                if (r > 0) {
                    mpi_send_bytes(addr_of(mg_u) + (mg_lo + 1) * 8, 8, r - 1, 33);
                }
                if (r < n - 1) {
                    mpi_send_bytes(addr_of(mg_u) + mg_hi * 8, 8, r + 1, 34);
                    mpi_recv_bytes(addr_of(mg_u) + (mg_hi + 1) * 8, 8, r + 1, 33);
                }
                if (r > 0) {
                    mpi_recv_bytes(addr_of(mg_u) + mg_lo * 8, 8, r - 1, 34);
                }
            }

            fn mg_coarse_on_root() {
                let int r = mpi_rank();
                let int n = mpi_size();
                let int src = 0;
                let int i = 0;
                let int s = 0;
                let int per = 128 / n;
                if (r == 0) {
                    for (src = 1; src < n; src = src + 1) {
                        mpi_recv_bytes(addr_of(mg_rtmp), 130 * 8, src, 35);
                        for (i = src * per; i < src * per + per; i = i + 1) {
                            mg_r[i + 1] = mg_rtmp[i + 1];
                        }
                    }
                    mg_restrict(0, 64);
                    mg_zero_coarse(0, 64);
                    for (s = 0; s < 4; s = s + 1) { mg_smooth_coarse(0, 64); }
                    for (src = 1; src < n; src = src + 1) {
                        mpi_send_bytes(addr_of(mg_uc), 66 * 8, src, 36);
                    }
                } else {
                    mpi_send_bytes(addr_of(mg_r), 130 * 8, 0, 35);
                    mpi_recv_bytes(addr_of(mg_uc), 66 * 8, 0, 36);
                }
            }

            fn main() -> int {
                let int r = mpi_rank();
                let int n = mpi_size();
                let int cycle = 0;
                let float norm0 = 0.0;
                let int per = 128 / n;
                mg_lo = r * per;
                mg_hi = mg_lo + per;
                if (r == n - 1) { mg_hi = 128; }
                mg_init(mg_lo, mg_hi);
                mg_halo_u();
                mg_resid(mg_lo, mg_hi);
                mg_norm = 0.0;
                mg_normf(mg_lo, mg_hi);
                norm0 = mpi_allreduce_sum_f(mg_norm);
                for (cycle = 0; cycle < 4; cycle = cycle + 1) {
                    mg_halo_u();
                    mg_smooth(mg_lo, mg_hi);
                    mg_halo_u();
                    mg_smooth(mg_lo, mg_hi);
                    mg_halo_u();
                    mg_resid(mg_lo, mg_hi);
                    mg_coarse_on_root();
                    mg_prolong(mg_lo / 2, mg_hi / 2);
                    mg_halo_u();
                    mg_smooth(mg_lo, mg_hi);
                }
                mg_halo_u();
                mg_resid(mg_lo, mg_hi);
                mg_norm = 0.0;
                mg_normf(mg_lo, mg_hi);
                mg_norm = mpi_allreduce_sum_f(mg_norm);
                if (r == 0) { mg_report(norm0, mg_norm); }
                mpi_barrier();
                return 0;
            }"
        }
    };
    format!("{MG_COMMON}\n{main}")
}
