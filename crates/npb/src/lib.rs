//! # fracas-npb — the NPB-T benchmark suite and scenario registry
//!
//! FL-language reimplementations of all eleven NAS Parallel Benchmark
//! kernels at a tiny "class T" scale, preserving each kernel's
//! computational character (FP intensity, memory-transaction share,
//! branch/function-call composition, communication structure) so the
//! paper's per-application correlations have something real to bite on:
//!
//! | App | Character | Models |
//! |-----|-----------|--------|
//! | BT  | 2×2 block tridiagonal line solves (dense FP) | ser, omp, mpi (no 2-rank) |
//! | CG  | pentadiagonal conjugate gradient (FP + dots) | ser, omp, mpi |
//! | DC  | data-cube group-by aggregation (int + memory) | ser, omp |
//! | DT  | block shuffle dataflow (communication)        | mpi |
//! | EP  | pseudo-random pair rejection (FP, sqrt)       | ser, omp, mpi |
//! | FT  | radix-2 complex FFT rows + inverse (FP)       | ser, omp, mpi |
//! | IS  | integer bucket sort / histogram (int, memory) | ser, omp, mpi |
//! | LU  | Gauss–Seidel SSOR sweeps (FP + memory)        | ser, omp, mpi |
//! | MG  | 1-D multigrid V-cycles (memory)               | ser, omp, mpi |
//! | SP  | scalar tridiagonal Thomas solves (FP)         | ser, omp, mpi (no 2-rank) |
//! | UA  | irregular indirection smoothing (FP + memory) | ser, omp |
//!
//! The availability matrix matches the paper's §3.3.2: 10 serial + 10
//! OpenMP + 9 MPI programs; BT and SP have no dual-rank MPI variant;
//! with 1/2/4-core processor models that yields **65 scenarios per ISA,
//! 130 in total** ([`Scenario::all`]).
//!
//! ## Example
//!
//! ```
//! use fracas_npb::{App, Model, Scenario};
//! use fracas_isa::IsaKind;
//!
//! let all = Scenario::all();
//! assert_eq!(all.len(), 130);
//! let s = Scenario::new(App::Is, Model::Omp, 4, IsaKind::Sira64).unwrap();
//! assert_eq!(s.id(), "is-omp-4-sira64");
//! assert!(Scenario::new(App::Bt, Model::Mpi, 2, IsaKind::Sira32).is_none());
//! ```

mod programs;

use fracas_isa::{Image, IsaKind};
use fracas_rt::BuildError;
use std::fmt;

/// The eleven NPB-T applications.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum App {
    Bt,
    Cg,
    Dc,
    Dt,
    Ep,
    Ft,
    Is,
    Lu,
    Mg,
    Sp,
    Ua,
}

impl App {
    /// All applications in the figures' display order.
    pub const ALL: [App; 11] = [
        App::Bt,
        App::Cg,
        App::Dc,
        App::Dt,
        App::Ep,
        App::Ft,
        App::Is,
        App::Lu,
        App::Mg,
        App::Sp,
        App::Ua,
    ];

    /// Upper-case display name (as in the paper's figures).
    pub fn name(self) -> &'static str {
        match self {
            App::Bt => "BT",
            App::Cg => "CG",
            App::Dc => "DC",
            App::Dt => "DT",
            App::Ep => "EP",
            App::Ft => "FT",
            App::Is => "IS",
            App::Lu => "LU",
            App::Mg => "MG",
            App::Sp => "SP",
            App::Ua => "UA",
        }
    }
}

impl fmt::Display for App {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The programming model of a scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Model {
    /// Single-threaded reference implementation.
    Serial,
    /// OpenMP-like fork/join parallelisation.
    Omp,
    /// MPI-like message passing (one process per rank).
    Mpi,
}

impl Model {
    /// All models.
    pub const ALL: [Model; 3] = [Model::Serial, Model::Omp, Model::Mpi];

    /// Short lower-case name.
    pub fn name(self) -> &'static str {
        match self {
            Model::Serial => "ser",
            Model::Omp => "omp",
            Model::Mpi => "mpi",
        }
    }
}

impl fmt::Display for Model {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// True if the paper's suite contains this (app, model) combination.
pub fn has_variant(app: App, model: Model) -> bool {
    match model {
        Model::Serial | Model::Omp => app != App::Dt,
        Model::Mpi => !matches!(app, App::Dc | App::Ua),
    }
}

/// True if this (app, model, cores) scenario exists (BT and SP have no
/// dual-rank MPI decomposition — the paper's §3.3.2 note).
pub fn available(app: App, model: Model, cores: u32) -> bool {
    if !has_variant(app, model) {
        return false;
    }
    match model {
        Model::Serial => cores == 1,
        Model::Omp => matches!(cores, 1 | 2 | 4),
        Model::Mpi => match cores {
            1 | 4 => true,
            2 => !matches!(app, App::Bt | App::Sp),
            _ => false,
        },
    }
}

/// One fault-injection scenario: an application variant on a processor
/// model (§4's unit of evaluation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Scenario {
    /// The application.
    pub app: App,
    /// The programming model.
    pub model: Model,
    /// Cores of the processor model (= ranks for MPI, = OMP threads).
    pub cores: u32,
    /// Target ISA.
    pub isa: IsaKind,
}

impl Scenario {
    /// Creates a scenario if it exists in the suite.
    pub fn new(app: App, model: Model, cores: u32, isa: IsaKind) -> Option<Scenario> {
        available(app, model, cores).then_some(Scenario {
            app,
            model,
            cores,
            isa,
        })
    }

    /// The full 130-scenario suite (65 per ISA), in (ISA, app, model,
    /// cores) order.
    pub fn all() -> Vec<Scenario> {
        let mut v = Vec::new();
        for isa in IsaKind::ALL {
            for app in App::ALL {
                for model in Model::ALL {
                    for cores in [1u32, 2, 4] {
                        if let Some(s) = Scenario::new(app, model, cores, isa) {
                            v.push(s);
                        }
                    }
                }
            }
        }
        v
    }

    /// A stable identifier, e.g. `ft-mpi-4-sira64`.
    pub fn id(&self) -> String {
        format!(
            "{}-{}-{}-{}",
            self.app.name().to_lowercase(),
            self.model,
            self.cores,
            self.isa
        )
    }

    /// The FL source of this scenario's program.
    pub fn source(&self) -> String {
        programs::source(self.app, self.model)
    }

    /// Builds the bootable image (compiles the program and links it with
    /// the guest runtime).
    ///
    /// # Errors
    ///
    /// Returns a [`BuildError`] if compilation or linking fails — which
    /// would be a bug in the bundled programs, covered by tests.
    pub fn build(&self) -> Result<Image, BuildError> {
        fracas_rt::build_image(&[&self.source()], self.isa)
    }

    /// [`Scenario::build`] with an explicit compiler optimisation level
    /// (the future-work compiler-flags axis).
    ///
    /// # Errors
    ///
    /// Returns a [`BuildError`] if compilation or linking fails.
    pub fn build_with(&self, opt: fracas_lang::OptLevel) -> Result<Image, BuildError> {
        fracas_rt::build_image_with(&[&self.source()], self.isa, opt)
    }

    /// Number of kernel processes to boot (MPI ranks; 1 otherwise).
    pub fn processes(&self) -> u32 {
        if self.model == Model::Mpi {
            self.cores
        } else {
            1
        }
    }

    /// OMP worker count the runtime should fork (1 unless OMP).
    pub fn omp_threads(&self) -> u32 {
        if self.model == Model::Omp {
            self.cores
        } else {
            1
        }
    }
}

impl fmt::Display for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.id())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_130_scenarios() {
        let all = Scenario::all();
        assert_eq!(all.len(), 130);
        let per_isa = all.iter().filter(|s| s.isa == IsaKind::Sira32).count();
        assert_eq!(per_isa, 65);
    }

    #[test]
    fn paper_counts_per_model() {
        let all = Scenario::all();
        let count =
            |m: Model, isa: IsaKind| all.iter().filter(|s| s.model == m && s.isa == isa).count();
        // 10 serial, 10 OMP apps x 3 core counts, 9 MPI apps x 3 - 2.
        assert_eq!(count(Model::Serial, IsaKind::Sira64), 10);
        assert_eq!(count(Model::Omp, IsaKind::Sira64), 30);
        assert_eq!(count(Model::Mpi, IsaKind::Sira64), 25);
    }

    #[test]
    fn bt_and_sp_lack_dual_rank_mpi() {
        assert!(Scenario::new(App::Bt, Model::Mpi, 2, IsaKind::Sira64).is_none());
        assert!(Scenario::new(App::Sp, Model::Mpi, 2, IsaKind::Sira64).is_none());
        assert!(Scenario::new(App::Bt, Model::Mpi, 4, IsaKind::Sira64).is_some());
        assert!(Scenario::new(App::Lu, Model::Mpi, 2, IsaKind::Sira64).is_some());
    }

    #[test]
    fn dt_is_mpi_only_dc_ua_have_no_mpi() {
        assert!(!has_variant(App::Dt, Model::Serial));
        assert!(!has_variant(App::Dt, Model::Omp));
        assert!(has_variant(App::Dt, Model::Mpi));
        assert!(!has_variant(App::Dc, Model::Mpi));
        assert!(!has_variant(App::Ua, Model::Mpi));
    }

    #[test]
    fn ids_are_unique() {
        let all = Scenario::all();
        let mut ids: Vec<String> = all.iter().map(Scenario::id).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), all.len());
    }

    #[test]
    fn sources_are_nonempty_for_all_scenarios() {
        for s in Scenario::all() {
            assert!(s.source().contains("fn main"), "{}", s.id());
        }
    }
}
