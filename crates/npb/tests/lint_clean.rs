//! Warning-snapshot over the real corpus: the unused-write lint runs on
//! every bundled NPB-T program and the snapshot is *empty*. Any new
//! warning means either a genuine dead store crept into a benchmark
//! port or the lint grew a false positive — both are PR blockers.

use fracas_lang::check_with_warnings;
use std::collections::BTreeSet;

#[test]
fn bundled_programs_have_no_dead_writes() {
    // One source per (app, model) — the ISA does not change the FL text.
    let mut seen = BTreeSet::new();
    let mut snapshot = Vec::new();
    for scenario in fracas_npb::Scenario::all() {
        if !seen.insert((scenario.app, scenario.model)) {
            continue;
        }
        // The runtime API header is what `build_image` appends before
        // compiling; sema needs it for the OMP/MPI declarations.
        let source = format!("{}\n{}", scenario.source(), fracas_rt::FL_HEADER);
        let (_, warnings) = check_with_warnings(&source)
            .unwrap_or_else(|e| panic!("{} fails sema: {e}", scenario.id()));
        for w in warnings {
            snapshot.push(format!("{:?}/{:?}: {w}", scenario.app, scenario.model));
        }
    }
    // The guest runtimes themselves are part of every image.
    for (name, src) in [("omp", fracas_rt::OMP_RT), ("mpi", fracas_rt::MPI_RT)] {
        let (_, warnings) =
            check_with_warnings(src).unwrap_or_else(|e| panic!("runtime `{name}` fails sema: {e}"));
        for w in warnings {
            snapshot.push(format!("rt/{name}: {w}"));
        }
    }
    assert!(
        snapshot.is_empty(),
        "dead writes in bundled programs:\n{}",
        snapshot.join("\n")
    );
}

#[test]
fn lint_still_fires_on_a_seeded_dead_store() {
    // Guard against the canary passing because the lint went silent.
    let (_, warnings) =
        check_with_warnings("fn f(int n) -> int { let int x = n * 2; x = n; return x; }").unwrap();
    assert_eq!(warnings.len(), 1);
    assert_eq!(warnings[0].name, "x");
}
