//! Golden-run tests: every scenario must build, run to a clean exit and
//! self-verify. SIRA-64 runs the full 65-scenario half; SIRA-32 (whose
//! softfloat makes runs ~20-40x longer) runs all serial programs here
//! and the full matrix in the `--ignored` test.

use fracas_isa::IsaKind;
use fracas_kernel::{BootSpec, Kernel, Limits, RunOutcome};
use fracas_npb::{Model, Scenario};

fn run_golden(s: &Scenario) -> (RunOutcome, String) {
    let image = s
        .build()
        .unwrap_or_else(|e| panic!("{}: build: {e}", s.id()));
    let spec = BootSpec {
        processes: s.processes(),
        omp_threads: s.omp_threads(),
        ..BootSpec::serial()
    };
    let mut kernel = Kernel::boot(&image, s.cores as usize, spec);
    let outcome = kernel.run(&Limits {
        max_cycles: 40_000_000_000,
        max_steps: 20_000_000_000,
    });
    (
        outcome,
        String::from_utf8_lossy(kernel.console()).into_owned(),
    )
}

fn assert_verified(s: &Scenario) {
    let (outcome, console) = run_golden(s);
    assert_eq!(
        outcome,
        RunOutcome::Exited { code: 0 },
        "{}: outcome {outcome}, console: {console}",
        s.id()
    );
    assert!(
        console.contains("VERIFIED 1"),
        "{}: verification failed, console: {console}",
        s.id()
    );
}

#[test]
fn all_sira64_scenarios_verify() {
    for s in Scenario::all()
        .into_iter()
        .filter(|s| s.isa == IsaKind::Sira64)
    {
        assert_verified(&s);
    }
}

#[test]
fn sira32_serial_scenarios_verify() {
    for s in Scenario::all()
        .into_iter()
        .filter(|s| s.isa == IsaKind::Sira32 && s.model == Model::Serial)
    {
        assert_verified(&s);
    }
}

#[test]
fn sira32_parallel_smoke() {
    for s in Scenario::all().into_iter().filter(|s| {
        s.isa == IsaKind::Sira32
            && s.cores == 2
            && matches!(s.app, fracas_npb::App::Is | fracas_npb::App::Cg)
    }) {
        assert_verified(&s);
    }
}

#[test]
#[ignore = "full 130-scenario sweep; run with --ignored"]
fn full_matrix_verifies() {
    for s in Scenario::all() {
        assert_verified(&s);
    }
}

#[test]
fn golden_runs_are_deterministic() {
    let s = Scenario::new(fracas_npb::App::Mg, Model::Omp, 2, IsaKind::Sira64)
        .expect("scenario exists");
    let image = s.build().unwrap();
    let spec = BootSpec {
        processes: s.processes(),
        omp_threads: s.omp_threads(),
        ..BootSpec::serial()
    };
    let mut k1 = Kernel::boot(&image, 2, spec);
    let mut k2 = Kernel::boot(&image, 2, spec);
    k1.run(&Limits::default());
    k2.run(&Limits::default());
    assert_eq!(k1.report(), k2.report());
}

#[test]
fn isa_workload_ratio_shows_softfloat_blowup() {
    // §4.1.1: the 32-bit ISA executes far more instructions on FP-heavy
    // workloads (software FP). CG serial is FP-dominated.
    let s64 = Scenario::new(fracas_npb::App::Cg, Model::Serial, 1, IsaKind::Sira64).unwrap();
    let s32 = Scenario::new(fracas_npb::App::Cg, Model::Serial, 1, IsaKind::Sira32).unwrap();
    let build = |s: &Scenario| {
        let image = s.build().unwrap();
        let mut k = Kernel::boot(&image, 1, BootSpec::serial());
        assert!(k.run(&Limits::default()).is_clean_exit());
        k.report().total_instructions()
    };
    let i64n = build(&s64);
    let i32n = build(&s32);
    assert!(
        i32n > i64n * 5,
        "expected softfloat blow-up: sira32 {i32n} vs sira64 {i64n}"
    );
}
