//! Criterion micro-benchmarks for the simulator substrate: interpreter
//! throughput per ISA, instruction encode/decode, the cache model, the
//! FL compiler, and softfloat vs hardware FP cost (a DESIGN.md ablation:
//! the register-pair marshalling + softfloat call path).

use criterion::{criterion_group, criterion_main, Criterion};
use fracas::cpu::Machine;
use fracas::isa::{decode, encode, link, Asm, Cond, Image, Inst, InstKind, IsaKind, Reg};
use fracas::mem::{Access, CacheParams, MemSystem};
use std::hint::black_box;

/// A bare-metal countdown loop of `n` iterations (4 instructions per
/// iteration).
fn loop_image(isa: IsaKind, n: u16) -> Image {
    let mut asm = Asm::new(isa);
    asm.global_fn("_start");
    asm.movz(Reg(1), n, 0);
    let done = asm.new_label();
    let top = asm.here();
    asm.cmpi(Reg(1), 0);
    asm.bc(Cond::Eq, done);
    asm.subi(Reg(1), Reg(1), 1);
    asm.b(top);
    asm.bind(done);
    asm.halt();
    link(isa, &[asm.into_object()]).expect("link")
}

fn bench_interpreter(c: &mut Criterion) {
    let mut group = c.benchmark_group("interpreter");
    for isa in IsaKind::ALL {
        let image = loop_image(isa, 1000);
        group.bench_function(format!("loop4k_{isa}"), |b| {
            b.iter(|| {
                let mut m = Machine::boot_flat(&image, 1);
                m.run_to_halt(100_000).expect("halt");
                black_box(m.core(0).stats().instructions)
            });
        });
    }
    group.finish();
}

fn bench_encode_decode(c: &mut Criterion) {
    let insts: Vec<Inst> = (0..64u8)
        .map(|i| {
            Inst::new(InstKind::AluImm {
                op: fracas::isa::AluOp::Add,
                rd: Reg(i % 16),
                rn: Reg((i + 1) % 16),
                imm: i16::from(i),
            })
        })
        .collect();
    c.bench_function("encode_decode_64", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for inst in &insts {
                let w = encode(black_box(inst));
                acc ^= w;
                black_box(decode(w).expect("valid"));
            }
            acc
        });
    });
}

fn bench_cache_model(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache");
    group.bench_function("sequential_4k_reads", |b| {
        let mut mem = MemSystem::new(1, CacheParams::paper());
        b.iter(|| {
            let mut cycles = 0u32;
            for i in 0..4096u32 {
                cycles += mem.access(0, Access::DataRead, i * 8);
            }
            black_box(cycles)
        });
    });
    group.bench_function("coherence_pingpong", |b| {
        let mut mem = MemSystem::new(2, CacheParams::paper());
        b.iter(|| {
            let mut cycles = 0u32;
            for i in 0..512u32 {
                cycles += mem.access(0, Access::DataWrite, 0x1000 + (i % 8) * 64);
                cycles += mem.access(1, Access::DataWrite, 0x1000 + (i % 8) * 64);
            }
            black_box(cycles)
        });
    });
    group.finish();
}

fn bench_compiler(c: &mut Criterion) {
    // The scenario source references the runtime API, so append the
    // extern header exactly as the build driver does.
    let source = format!(
        "{}\n{}",
        fracas::npb::Scenario::new(
            fracas::npb::App::Cg,
            fracas::npb::Model::Serial,
            1,
            IsaKind::Sira64,
        )
        .expect("scenario")
        .source(),
        fracas::rt::FL_HEADER
    );
    let mut group = c.benchmark_group("compiler");
    for isa in IsaKind::ALL {
        group.bench_function(format!("compile_cg_{isa}"), |b| {
            b.iter(|| fracas::lang::compile(black_box(&source), isa).expect("compiles"));
        });
    }
    group.finish();
}

/// Ablation: the cost of one guest FP multiply-add chain on hardware FP
/// (SIRA-64) vs the softfloat call path with register-pair marshalling
/// (SIRA-32). Reported as host time to simulate 200 guest operations;
/// the guest-cycle gap is printed by the campaign binaries.
fn bench_float_paths(c: &mut Criterion) {
    let src = "fn main() -> int {
        let float acc = 1.0;
        let int i = 0;
        for (i = 0; i < 200; i = i + 1) {
            acc = acc * 1.0009765625 + 0.03125;
        }
        if (acc > 0.0) { return 0; }
        return 1;
    }";
    let mut group = c.benchmark_group("float_path");
    for isa in IsaKind::ALL {
        let image = fracas::rt::build_image(&[src], isa).expect("build");
        group.bench_function(format!("fma200_{isa}"), |b| {
            b.iter(|| {
                let mut kernel =
                    fracas::kernel::Kernel::boot(&image, 1, fracas::kernel::BootSpec::serial());
                let outcome = kernel.run(&fracas::kernel::Limits::default());
                assert!(outcome.is_clean_exit());
                black_box(kernel.report().cycles)
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_interpreter, bench_encode_decode, bench_cache_model, bench_compiler, bench_float_paths
}
criterion_main!(benches);
