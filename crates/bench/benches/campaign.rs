//! Criterion benchmarks for the campaign machinery, including two
//! DESIGN.md ablations: injection-job batching (the paper's §3.2.4 HPC
//! job-packing argument) and the cache timing model's contribution.

use criterion::{criterion_group, criterion_main, Criterion};
use fracas::inject::{
    golden_run, golden_run_with_checkpoints, inject_one, run_campaign, sample_faults,
    CampaignConfig, CheckpointSet, Workload,
};
use fracas::kernel::{BootSpec, Kernel, Limits};
use fracas::mem::CacheParams;
use fracas::npb::{App, Model, Scenario};
use std::hint::black_box;

fn workload() -> Workload {
    let scenario = Scenario::new(App::Is, Model::Serial, 1, fracas::isa::IsaKind::Sira64)
        .expect("scenario exists");
    Workload::from_scenario(&scenario).expect("build")
}

fn bench_golden(c: &mut Criterion) {
    let w = workload();
    c.bench_function("golden_run_is_ser", |b| {
        b.iter(|| black_box(golden_run(&w).0.cycles));
    });
}

fn bench_campaign_batching(c: &mut Criterion) {
    let w = workload();
    let mut group = c.benchmark_group("campaign_batching");
    group.sample_size(10);
    for batch in [1usize, 8] {
        group.bench_function(format!("batch_{batch}"), |b| {
            b.iter(|| {
                let result = run_campaign(
                    &w,
                    &CampaignConfig {
                        faults: 12,
                        batch,
                        threads: 1,
                        ..CampaignConfig::default()
                    },
                );
                black_box(result.tally.total())
            });
        });
    }
    group.finish();
}

/// The injection engine's two replay strategies on the same fault list:
/// resuming from golden-run checkpoints (with reconvergence pruning)
/// versus replaying every injection from boot. The ratio of the two
/// medians is the campaign speedup the checkpoint engine buys.
fn bench_checkpoint_vs_boot_replay(c: &mut Criterion) {
    // EP's golden run exceeds 100k cycles, so boot-replay pays the full
    // prefix cost the checkpoint ladder exists to avoid.
    let scenario = Scenario::new(App::Ep, Model::Serial, 1, fracas::isa::IsaKind::Sira64)
        .expect("scenario exists");
    let w = Workload::from_scenario(&scenario).expect("build");
    let config = CampaignConfig::default();
    let (golden, _, checkpoints) = golden_run_with_checkpoints(&w, config.checkpoints);
    let faults = sample_faults(
        w.image.isa,
        w.cores as u32,
        golden.cycles,
        24,
        &config.space,
        config.seed,
    );
    let limits = Limits {
        max_cycles: ((golden.cycles as f64 * config.watchdog_factor) as u64)
            .max(golden.cycles + 100_000),
        max_steps: (golden.total_instructions() * 8).max(1_000_000),
    };
    let boot_only = CheckpointSet::empty();
    let mut group = c.benchmark_group("checkpoint_engine");
    group.sample_size(10);
    group.bench_function("resume", |b| {
        b.iter(|| {
            for f in &faults {
                black_box(inject_one(&w, f, &checkpoints, &limits));
            }
        });
    });
    group.bench_function("boot_replay", |b| {
        b.iter(|| {
            for f in &faults {
                black_box(inject_one(&w, f, &boot_only, &limits));
            }
        });
    });
    group.finish();
}

/// Ablation: golden run with the paper's cache hierarchy vs a
/// zero-latency memory model — quantifies how much of the cycle count
/// (and thus of the vulnerability-window timing) the cache model carries.
fn bench_cache_ablation(c: &mut Criterion) {
    let scenario = Scenario::new(App::Mg, Model::Serial, 1, fracas::isa::IsaKind::Sira64)
        .expect("scenario exists");
    let image = std::sync::Arc::new(scenario.build().expect("build"));
    let mut group = c.benchmark_group("cache_ablation");
    group.sample_size(10);
    for (name, cache) in [
        ("paper_caches", CacheParams::paper()),
        (
            "zero_latency",
            CacheParams {
                l2_hit_cycles: 0,
                mem_cycles: 0,
                ..CacheParams::paper()
            },
        ),
    ] {
        let spec = BootSpec {
            cache,
            ..BootSpec::serial()
        };
        let image = image.clone();
        group.bench_function(name, move |b| {
            b.iter(|| {
                let mut kernel = Kernel::boot(&image, 1, spec);
                assert!(kernel.run(&Limits::default()).is_clean_exit());
                black_box(kernel.report().cycles)
            });
        });
    }
    group.finish();
}

/// Ablation: scheduler preemption quantum on an oversubscribed OMP
/// workload (4 threads on 2 cores).
fn bench_quantum_ablation(c: &mut Criterion) {
    let scenario = Scenario::new(App::Cg, Model::Omp, 4, fracas::isa::IsaKind::Sira64)
        .expect("scenario exists");
    let image = std::sync::Arc::new(scenario.build().expect("build"));
    let mut group = c.benchmark_group("quantum_ablation");
    group.sample_size(10);
    for quantum in [2_000u64, 20_000, 200_000] {
        let spec = BootSpec {
            omp_threads: 4,
            quantum,
            ..BootSpec::serial()
        };
        let image = image.clone();
        group.bench_function(format!("quantum_{quantum}"), move |b| {
            b.iter(|| {
                let mut kernel = Kernel::boot(&image, 2, spec);
                assert!(kernel.run(&Limits::default()).is_clean_exit());
                black_box(kernel.report().cycles)
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_golden, bench_campaign_batching, bench_checkpoint_vs_boot_replay,
        bench_cache_ablation, bench_quantum_ablation
}
criterion_main!(benches);
