//! Pure report formatting for the `stats_*` binaries.
//!
//! The binaries print whatever these functions return, and the
//! golden-file tests snapshot the same strings on a tiny fixed-seed
//! campaign — so a refactor of the bins (or of the orchestrator feeding
//! them) cannot silently change published numbers.

use fracas::inject::FaultSpace;
use fracas::isa::IsaKind;
use fracas::mine::{composition_stats, masking_comparison, Database};
use std::fmt::Write as _;

/// The §4.1.3 branch-composition report plus the §4.1.2 register-file
/// fault-target spaces (the body of `stats_composition`).
pub fn composition_report(db: &Database) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Branch composition per macro scenario (paper: 19.24/14.08/17.65/12.01 %)"
    );
    let _ = writeln!(
        out,
        "{:<8} {:>12} {:>8} {:>10}",
        "Group", "Mean (%)", "Sigma", "Scenarios"
    );
    for s in composition_stats(db) {
        let _ = writeln!(
            out,
            "{:<8} {:>12.2} {:>8.2} {:>10}",
            s.group, s.mean_branch_pct, s.sigma, s.scenarios
        );
    }
    let _ = writeln!(out);
    let _ = writeln!(out, "Fault-target register-file spaces (4.1.2):");
    let space = FaultSpace::default();
    for isa in IsaKind::ALL {
        let _ = writeln!(
            out,
            "  {:<8} {:>6} bits/core ({} GPRs x {}b{})",
            isa.name(),
            space.total_bits(isa, 1),
            isa.reg_file().gpr_count,
            isa.reg_file().gpr_bits,
            if isa.fpr_count() > 0 {
                format!(
                    " + {} FPRs x {}b",
                    isa.reg_file().fpr_count,
                    isa.reg_file().fpr_bits
                )
            } else {
                String::new()
            }
        );
    }
    let _ = writeln!(
        out,
        "  integer-file growth: {}x (paper: a factor of four)",
        IsaKind::Sira64.reg_file().gpr_total_bits() / IsaKind::Sira32.reg_file().gpr_total_bits()
    );
    out
}

/// The §4.2.2 masking / balance / vulnerability-window report (the body
/// of `stats_masking`).
pub fn masking_report(db: &Database) -> String {
    let s = masking_comparison(db);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Masking comparison over MPI/OMP pairs (paper: MPI wins 38 of 44)"
    );
    let _ = writeln!(out, "  comparable pairs:          {}", s.pairs);
    let _ = writeln!(out, "  MPI higher masking rate:   {}", s.mpi_wins);
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "Workload balance, per-core instruction imbalance (paper: ~4% MPI, up to 16% OMP)"
    );
    let _ = writeln!(
        out,
        "  MPI mean imbalance:        {:.1} %",
        s.mpi_imbalance * 100.0
    );
    let _ = writeln!(
        out,
        "  OMP mean imbalance:        {:.1} %",
        s.omp_imbalance * 100.0
    );
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "Execution time (paper: OMP ~16% shorter than MPI on average)"
    );
    let _ = writeln!(out, "  mean OMP/MPI cycle ratio:  {:.2}", s.omp_cycle_ratio);
    let _ = writeln!(out);
    let _ = writeln!(out, "Vulnerability window (paper: < 23% worst case)");
    let _ = writeln!(
        out,
        "  max API cycle fraction:    {:.1} %",
        s.max_api_window * 100.0
    );
    out
}
