//! Table 1: NPB workload summary — single-run simulation time, fault
//! campaign hours and executed instructions (smaller / average / larger)
//! per ISA, plus the total campaign hours.
//!
//! Runs the golden execution of all 130 scenarios (no injections) and
//! derives guest time at the 1 GHz model clock. Campaign hours are
//! projected at the paper's 8,000 injections per scenario.

use fracas::inject::{golden_only, Workload};
use fracas::isa::IsaKind;
use fracas::mine::{workload_summary, Database};
use fracas::npb::Scenario;
use std::time::Instant;

fn main() {
    let started = Instant::now();
    let mut db = Database::new();
    let scenarios = Scenario::all();
    eprintln!("golden-running {} scenarios...", scenarios.len());
    for s in &scenarios {
        let workload = Workload::from_scenario(s).unwrap_or_else(|e| panic!("{}: {e}", s.id()));
        db.push(golden_only(&workload, 8000));
    }
    eprintln!(
        "golden runs took {:.1}s host time",
        started.elapsed().as_secs_f64()
    );

    println!("Table 1: NPB workload summary (guest time at 1 GHz, campaign at 8000 faults)");
    println!(
        "{:<28} {:>14} {:>14} {:>14}",
        "", "Smaller", "Average", "Larger"
    );
    for isa in [IsaKind::Sira64, IsaKind::Sira32] {
        let s = workload_summary(&db, isa);
        let label = match isa {
            IsaKind::Sira32 => "ARMv7-like (SIRA-32)",
            IsaKind::Sira64 => "ARMv8-like (SIRA-64)",
        };
        println!("-- {label} ({} scenarios)", s.scenarios);
        println!(
            "{:<28} {:>14.4} {:>14.4} {:>14.4}",
            "Single run (s)", s.sim_seconds.0, s.sim_seconds.1, s.sim_seconds.2
        );
        println!(
            "{:<28} {:>14.4} {:>14.4} {:>14.4}",
            "Fault campaign (h)", s.campaign_hours.0, s.campaign_hours.1, s.campaign_hours.2
        );
        println!(
            "{:<28} {:>14.3e} {:>14.3e} {:>14.3e}",
            "Executed instructions",
            s.instructions.0 as f64,
            s.instructions.1 as f64,
            s.instructions.2 as f64
        );
        println!(
            "{:<28} {:>14.2}",
            "Total campaign (h)", s.total_campaign_hours
        );
    }

    let v7 = workload_summary(&db, IsaKind::Sira32);
    let v8 = workload_summary(&db, IsaKind::Sira64);
    if v8.instructions.1 > 0 {
        println!();
        println!(
            "ARMv7-like / ARMv8-like average instruction ratio: {:.1}x (paper: ~25x from software FP)",
            v7.instructions.1 as f64 / v8.instructions.1 as f64
        );
        println!(
            "ARMv7-like / ARMv8-like average time ratio: {:.1}x (paper: speedups up to 10x)",
            v7.sim_seconds.1 / v8.sim_seconds.1
        );
    }
}
