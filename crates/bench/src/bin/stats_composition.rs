//! §4.1.3: mean branch composition (branches as a share of executed
//! instructions) and its standard deviation per macro scenario, plus the
//! register-file fault-target spaces of §4.1.2.
//!
//! The report body lives in [`fracas_bench::reports::composition_report`]
//! and is pinned by a golden-file test on a tiny fixed-seed campaign.

use fracas::npb::Scenario;

fn main() {
    let db = fracas_bench::ensure_db(&Scenario::all());
    print!("{}", fracas_bench::reports::composition_report(&db));
}
