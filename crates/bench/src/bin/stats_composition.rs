//! §4.1.3: mean branch composition (branches as a share of executed
//! instructions) and its standard deviation per macro scenario, plus the
//! register-file fault-target spaces of §4.1.2.

use fracas::inject::FaultSpace;
use fracas::isa::IsaKind;
use fracas::mine::composition_stats;
use fracas::npb::Scenario;

fn main() {
    let db = fracas_bench::ensure_db(&Scenario::all());
    println!("Branch composition per macro scenario (paper: 19.24/14.08/17.65/12.01 %)");
    println!(
        "{:<8} {:>12} {:>8} {:>10}",
        "Group", "Mean (%)", "Sigma", "Scenarios"
    );
    for s in composition_stats(&db) {
        println!(
            "{:<8} {:>12.2} {:>8.2} {:>10}",
            s.group, s.mean_branch_pct, s.sigma, s.scenarios
        );
    }
    println!();
    println!("Fault-target register-file spaces (4.1.2):");
    let space = FaultSpace::default();
    for isa in IsaKind::ALL {
        println!(
            "  {:<8} {:>6} bits/core ({} GPRs x {}b{})",
            isa.name(),
            space.total_bits(isa, 1),
            isa.reg_file().gpr_count,
            isa.reg_file().gpr_bits,
            if isa.fpr_count() > 0 {
                format!(
                    " + {} FPRs x {}b",
                    isa.reg_file().fpr_count,
                    isa.reg_file().fpr_bits
                )
            } else {
                String::new()
            }
        );
    }
    println!(
        "  integer-file growth: {}x (paper: a factor of four)",
        IsaKind::Sira64.reg_file().gpr_total_bits() / IsaKind::Sira32.reg_file().gpr_total_bits()
    );
}
