//! Extension: single-word multiple-bit upsets (the paper's ref. \[13\],
//! Johansson et al.) — outcome severity as the upset width grows from
//! the paper's SBU model to 2- and 4-bit adjacent upsets.
//!
//! Each upset width is one fleet sweep: both ISAs' workloads share the
//! orchestrator's worker pool instead of running back to back.

use fracas::inject::{run_fleet, FaultSpace, FleetConfig, Workload};
use fracas::npb::{App, Model, Scenario};
use fracas::prelude::*;

fn main() {
    let base = fracas_bench::fleet_config();
    println!(
        "MBU severity sweep ({} faults/run): adjacent-bit upset widths 1/2/4\n",
        base.campaign.faults
    );
    println!(
        "{:<22} {:>6} {:>8} {:>8} {:>8} {:>8} {:>8} {:>9}",
        "Scenario", "Width", "Vanish", "ONA", "OMM", "UT", "Hang", "Masked%"
    );
    let workloads: Vec<Workload> = IsaKind::ALL
        .into_iter()
        .map(|isa| {
            let scenario = Scenario::new(App::Mg, Model::Serial, 1, isa).expect("serial exists");
            Workload::from_scenario(&scenario).unwrap_or_else(|e| panic!("{}: {e}", scenario.id()))
        })
        .collect();
    let mut rows = Vec::new();
    for width in [1u32, 2, 4] {
        let config = FleetConfig {
            campaign: CampaignConfig {
                space: FaultSpace {
                    mbu_width: width,
                    ..FaultSpace::default()
                },
                ..base.campaign.clone()
            },
            ..base.clone()
        };
        for result in run_fleet(&workloads, &config) {
            rows.push((result.id.clone(), width, result));
        }
    }
    rows.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
    for (id, width, result) in rows {
        println!(
            "{:<22} {:>6} {:>8.1} {:>8.1} {:>8.1} {:>8.1} {:>8.1} {:>9.1}",
            id,
            width,
            result.tally.pct(Outcome::Vanished),
            result.tally.pct(Outcome::Ona),
            result.tally.pct(Outcome::Omm),
            result.tally.pct(Outcome::Ut),
            result.tally.pct(Outcome::Hang),
            result.tally.masking_rate() * 100.0,
        );
    }
    println!(
        "\nWider upsets flip more live bits per strike, so the masked share should\n\
         fall (and UT rise) monotonically with width — the reason MBU-hardened\n\
         SRAM interleaving exists."
    );
}
