//! Extension: single-word multiple-bit upsets (the paper's ref. [13],
//! Johansson et al.) — outcome severity as the upset width grows from
//! the paper's SBU model to 2- and 4-bit adjacent upsets.

use fracas::inject::{run_campaign, FaultSpace, Workload};
use fracas::npb::{App, Model, Scenario};
use fracas::prelude::*;

fn main() {
    let base = fracas_bench::config();
    println!(
        "MBU severity sweep ({} faults/run): adjacent-bit upset widths 1/2/4\n",
        base.faults
    );
    println!(
        "{:<22} {:>6} {:>8} {:>8} {:>8} {:>8} {:>8} {:>9}",
        "Scenario", "Width", "Vanish", "ONA", "OMM", "UT", "Hang", "Masked%"
    );
    for isa in IsaKind::ALL {
        let scenario = Scenario::new(App::Mg, Model::Serial, 1, isa).expect("serial exists");
        let workload =
            Workload::from_scenario(&scenario).unwrap_or_else(|e| panic!("{}: {e}", scenario.id()));
        for width in [1u32, 2, 4] {
            let config = CampaignConfig {
                space: FaultSpace {
                    mbu_width: width,
                    ..FaultSpace::default()
                },
                ..base.clone()
            };
            let result = run_campaign(&workload, &config);
            println!(
                "{:<22} {:>6} {:>8.1} {:>8.1} {:>8.1} {:>8.1} {:>8.1} {:>9.1}",
                scenario.id(),
                width,
                result.tally.pct(Outcome::Vanished),
                result.tally.pct(Outcome::Ona),
                result.tally.pct(Outcome::Omm),
                result.tally.pct(Outcome::Ut),
                result.tally.pct(Outcome::Hang),
                result.tally.masking_rate() * 100.0,
            );
        }
    }
    println!(
        "\nWider upsets flip more live bits per strike, so the masked share should\n\
         fall (and UT rise) monotonically with width — the reason MBU-hardened\n\
         SRAM interleaving exists."
    );
}
