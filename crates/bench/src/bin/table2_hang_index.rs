//! Table 2: Hang occurrence against the normalized function-calls ×
//! branches (F*B) index, IS case study across MPI/OMP, both ISAs and
//! 1/2/4 cores.

use fracas::isa::IsaKind;
use fracas::mine::hang_index_table;
use fracas::npb::{App, Model, Scenario};

fn main() {
    let mut scenarios = Vec::new();
    for isa in IsaKind::ALL {
        for model in [Model::Mpi, Model::Omp] {
            for cores in [1u32, 2, 4] {
                if let Some(s) = Scenario::new(App::Is, model, cores, isa) {
                    scenarios.push(s);
                }
            }
        }
    }
    let db = fracas_bench::ensure_db(&scenarios);
    println!("Table 2: IS Hang %% vs normalized F*B index");
    println!(
        "{:<10} {:>6} {:>9} {:>14} {:>14} {:>10}",
        "Scenario", "Cores", "Hang (%)", "Branches", "F. Calls", "Index F*B"
    );
    for row in hang_index_table(&db, App::Is) {
        println!(
            "{:<10} {:>6} {:>9.3} {:>14} {:>14} {:>10.3}",
            row.group, row.cores, row.hang_pct, row.branches, row.calls, row.index_fb
        );
    }
    println!();
    println!("paper's claim: the F*B index and the Hang share rise together with core count.");
}
