//! Figures 3a/3b/3c: NPB fault-injection outcome distributions and the
//! MPI-vs-OMP mismatch on the ARMv8-like processor (SIRA-64).

use fracas::isa::IsaKind;
use fracas::mine::{mismatch_table, outcome_table};
use fracas::npb::Model;

fn main() {
    let isa = IsaKind::Sira64;
    let db = fracas_bench::ensure_db(&fracas_bench::scenarios_for_isa(isa));
    println!("Figure 3a: ARMv8-like MPI benchmarks");
    println!("{}", outcome_table(&db, isa, Model::Mpi));
    println!("Figure 3b: ARMv8-like OMP benchmarks");
    println!("{}", outcome_table(&db, isa, Model::Omp));
    println!("Figure 3c: ARMv8-like MPI-vs-OMP mismatch");
    println!("{}", mismatch_table(&db, isa));
}
