//! Runs (or resumes) the full 130-scenario fault-injection campaign and
//! writes the shared database every other target reads. Tune with
//! `FRACAS_FAULTS` / `FRACAS_SEED` / `FRACAS_THREADS` / `FRACAS_DB`.

use fracas::npb::Scenario;

fn main() {
    let db = fracas_bench::ensure_db(&Scenario::all());
    println!(
        "database covers {} campaigns -> {}",
        fracas_bench::coverage(&db),
        fracas_bench::db_path().display()
    );
}
