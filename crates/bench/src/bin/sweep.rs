//! The sweep command: runs every (optionally filtered) scenario on both
//! ISAs end-to-end through the fleet orchestrator — one shared worker
//! pool, streaming record sink with crash-safe resume, per-workload
//! progress and optional statistical early stopping.
//!
//! ```text
//! sweep [--isa sira32|sira64] [--model ser|omp|mpi] [--app bt|cg|...]
//!       [--cores N] [--faults N] [--epsilon E] [--threads N] [--seed N]
//!       [--db PATH] [--sink PATH] [--prune-dead]
//! ```
//!
//! Kill it at any point and re-run with the same arguments: completed
//! injections replay from the sink and the final database is
//! bit-identical to an uninterrupted sweep. Environment knobs
//! (`FRACAS_FAULTS`, `FRACAS_EPSILON`, ...) supply defaults; flags win.

use fracas::isa::IsaKind;
use fracas::npb::{App, Model, Scenario};
use std::path::PathBuf;
use std::process::exit;

struct Args {
    isa: Option<IsaKind>,
    model: Option<Model>,
    app: Option<App>,
    cores: Option<u32>,
    faults: Option<usize>,
    epsilon: Option<f64>,
    threads: Option<usize>,
    seed: Option<u64>,
    db: Option<PathBuf>,
    sink: Option<PathBuf>,
    prune_dead: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: sweep [--isa sira32|sira64] [--model ser|omp|mpi] [--app NAME] [--cores N]\n\
         \u{20}            [--faults N] [--epsilon E] [--threads N] [--seed N] [--db PATH] [--sink PATH]\n\
         \u{20}            [--prune-dead]"
    );
    exit(2)
}

fn parse_args() -> Args {
    let mut args = Args {
        isa: None,
        model: None,
        app: None,
        cores: None,
        faults: None,
        epsilon: None,
        threads: None,
        seed: None,
        db: None,
        sink: None,
        prune_dead: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {flag}");
                usage()
            })
        };
        match flag.as_str() {
            "--isa" => {
                args.isa = Some(match value().as_str() {
                    "sira32" => IsaKind::Sira32,
                    "sira64" => IsaKind::Sira64,
                    other => {
                        eprintln!("unknown ISA {other}");
                        usage()
                    }
                });
            }
            "--model" => {
                args.model = Some(match value().as_str() {
                    "ser" | "serial" => Model::Serial,
                    "omp" => Model::Omp,
                    "mpi" => Model::Mpi,
                    other => {
                        eprintln!("unknown model {other}");
                        usage()
                    }
                });
            }
            "--app" => {
                let name = value().to_uppercase();
                args.app = Some(
                    App::ALL
                        .into_iter()
                        .find(|a| a.name() == name)
                        .unwrap_or_else(|| {
                            eprintln!("unknown app {name}");
                            usage()
                        }),
                );
            }
            "--cores" => args.cores = Some(parse_or_usage(&value(), "--cores")),
            "--faults" => args.faults = Some(parse_or_usage(&value(), "--faults")),
            "--epsilon" => args.epsilon = Some(parse_or_usage(&value(), "--epsilon")),
            "--threads" => args.threads = Some(parse_or_usage(&value(), "--threads")),
            "--seed" => args.seed = Some(parse_or_usage(&value(), "--seed")),
            "--db" => args.db = Some(PathBuf::from(value())),
            "--sink" => args.sink = Some(PathBuf::from(value())),
            // Short-circuit provably-masked injections; the database is
            // byte-identical with or without this flag, only faster.
            "--prune-dead" => args.prune_dead = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                usage()
            }
        }
    }
    args
}

fn parse_or_usage<T: std::str::FromStr>(text: &str, flag: &str) -> T {
    text.parse().unwrap_or_else(|_| {
        eprintln!("bad value {text:?} for {flag}");
        usage()
    })
}

fn main() {
    let args = parse_args();
    let scenarios: Vec<Scenario> = Scenario::all()
        .into_iter()
        .filter(|s| args.isa.is_none_or(|isa| s.isa == isa))
        .filter(|s| args.model.is_none_or(|m| s.model == m))
        .filter(|s| args.app.is_none_or(|a| s.app == a))
        .filter(|s| args.cores.is_none_or(|c| s.cores == c))
        .collect();
    if scenarios.is_empty() {
        eprintln!("no scenario matches the given filters");
        exit(1);
    }
    let mut config = fracas_bench::fleet_config();
    if let Some(v) = args.faults {
        config.campaign.faults = v;
    }
    if let Some(v) = args.epsilon {
        config.epsilon = v;
    }
    if let Some(v) = args.threads {
        config.campaign.threads = v;
    }
    if let Some(v) = args.seed {
        config.campaign.seed = v;
    }
    if args.prune_dead {
        config.campaign.prune_dead = true;
    }
    let db_path = args.db.unwrap_or_else(fracas_bench::db_path);
    let sink = args.sink.unwrap_or_else(|| {
        let mut p = db_path.clone().into_os_string();
        p.push(".wal");
        PathBuf::from(p)
    });
    let db = fracas_bench::run_sweep(&scenarios, &config, &db_path, &sink);
    println!(
        "database covers {} campaign(s) -> {}",
        fracas_bench::coverage(&db),
        db_path.display()
    );
    println!(
        "{:<22} {:>7} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "Scenario", "n", "Vanish", "ONA", "OMM", "UT", "Hang", "Anomaly"
    );
    for s in &scenarios {
        let Some(c) = db.get(fracas::mine::Key {
            app: s.app,
            model: s.model,
            cores: s.cores,
            isa: s.isa,
        }) else {
            continue;
        };
        use fracas::inject::Outcome;
        println!(
            "{:<22} {:>7} {:>8.1} {:>8.1} {:>8.1} {:>8.1} {:>8.1} {:>8.1}",
            c.id,
            c.tally.total(),
            c.tally.pct(Outcome::Vanished),
            c.tally.pct(Outcome::Ona),
            c.tally.pct(Outcome::Omm),
            c.tally.pct(Outcome::Ut),
            c.tally.pct(Outcome::Hang),
            c.tally.pct(Outcome::Anomaly),
        );
    }
}
