//! The sweep command: runs every (optionally filtered) scenario on both
//! ISAs end-to-end through the fleet orchestrator — one shared worker
//! pool, streaming record sink with crash-safe resume, per-workload
//! progress and optional statistical early stopping.
//!
//! ```text
//! sweep [--isa sira32|sira64] [--model ser|omp|mpi] [--app bt|cg|...]
//!       [--cores N] [--faults N] [--epsilon E] [--threads N] [--seed N]
//!       [--db PATH] [--sink PATH] [--prune-dead] [--prune-classes]
//!       [--oracle-audit R] [--text-faults]
//! ```
//!
//! Kill it at any point and re-run with the same arguments: completed
//! injections replay from the sink and the final database is
//! bit-identical to an uninterrupted sweep. Environment knobs
//! (`FRACAS_FAULTS`, `FRACAS_EPSILON`, ...) supply defaults; flags win.

use fracas_bench::cli::SweepOpts;

const USAGE: &str = "sweep [--isa sira32|sira64] [--model ser|omp|mpi] [--app NAME] [--cores N]\n\
     \u{20}            [--faults N] [--epsilon E] [--threads N] [--seed N] [--db PATH] [--sink PATH]\n\
     \u{20}            [--prune-dead] [--prune-classes] [--oracle-audit R] [--text-faults]";

fn main() {
    let opts = SweepOpts::parse(USAGE);
    let scenarios = opts.filter.scenarios();
    let config = opts.fleet_config();
    let db_path = opts.db_path();
    let sink = opts.sink_path(&db_path);
    let db = fracas_bench::run_sweep(&scenarios, &config, &db_path, &sink);
    println!(
        "database covers {} campaign(s) -> {}",
        fracas_bench::coverage(&db),
        db_path.display()
    );
    println!(
        "{:<22} {:>7} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "Scenario", "n", "Vanish", "ONA", "OMM", "UT", "Hang", "Anomaly"
    );
    for s in &scenarios {
        let Some(c) = db.get(fracas::mine::Key {
            app: s.app,
            model: s.model,
            cores: s.cores,
            isa: s.isa,
        }) else {
            continue;
        };
        use fracas::inject::Outcome;
        println!(
            "{:<22} {:>7} {:>8.1} {:>8.1} {:>8.1} {:>8.1} {:>8.1} {:>8.1}",
            c.id,
            c.tally.total(),
            c.tally.pct(Outcome::Vanished),
            c.tally.pct(Outcome::Ona),
            c.tally.pct(Outcome::Omm),
            c.tally.pct(Outcome::Ut),
            c.tally.pct(Outcome::Hang),
            c.tally.pct(Outcome::Anomaly),
        );
    }
}
