//! Plan-side collapse report for `--prune-classes`: per-scenario
//! equivalence-class statistics over the sampled fault list — executed
//! fraction, collapse factor, decided/live/member/singleton breakdown
//! and unmodeled-target counts — without running a single injection
//! (each scenario costs one traced golden run).
//!
//! ```text
//! stats_classes [--isa ...] [--model ...] [--app NAME] [--cores N]
//!               [--faults N] [--seed N] [--gate F]
//! ```
//!
//! `--gate F` turns the report into a CI check: exit 1 unless the
//! aggregate executed fraction over the selected scenarios is ≤ `F`.
//! The paper-facing acceptance bar is `--app EP --gate 0.5`: class
//! pruning must execute at most half of the sampled faults across the
//! EP programming-model × ISA matrix.

use fracas::inject::{campaign_faults, class_plan, golden_trace, ClassStats, Workload};
use fracas_bench::cli::{Parser, ScenarioFilter};
use std::time::Instant;

const USAGE: &str = "stats_classes [--isa sira32|sira64] [--model ser|omp|mpi] [--app NAME] \
     [--cores N] [--faults N] [--seed N] [--gate F]";

fn main() {
    let mut filter = ScenarioFilter::default();
    let mut faults: Option<usize> = None;
    let mut seed: Option<u64> = None;
    let mut gate: Option<f64> = None;
    let mut p = Parser::new(USAGE);
    while let Some(flag) = p.next_flag() {
        if filter.accept(&mut p, &flag) {
            continue;
        }
        match flag.as_str() {
            "--faults" => faults = Some(p.parsed(&flag)),
            "--seed" => seed = Some(p.parsed(&flag)),
            "--gate" => gate = Some(p.parsed(&flag)),
            other => p.unknown(other),
        }
    }
    let mut config = fracas_bench::config();
    if let Some(v) = faults {
        config.faults = v;
    }
    if let Some(v) = seed {
        config.seed = v;
    }
    let scenarios = filter.scenarios();
    eprintln!(
        "class-planning {} scenario(s) at {} faults each (seed {})...",
        scenarios.len(),
        config.faults,
        config.seed
    );
    let start = Instant::now();
    println!(
        "{:<22} {:>5} {:>5} {:>5} {:>5} {:>5} {:>6} {:>9} {:>9}",
        "scenario", "flts", "dec", "live", "mem", "sing", "unmod", "executed", "collapse"
    );
    let mut total = ClassStats::default();
    for s in &scenarios {
        let workload = Workload::from_scenario(s).unwrap_or_else(|e| panic!("{}: {e}", s.id()));
        let (report, trace) = golden_trace(&workload);
        let sampled = campaign_faults(&workload, &config, report.cycles);
        let stats = class_plan(&workload, &trace, &sampled).stats();
        println!(
            "{:<22} {:>5} {:>5} {:>5} {:>5} {:>5} {:>6} {:>8.1}% {:>8.1}x",
            s.id(),
            stats.faults,
            stats.decided,
            stats.live_classes,
            stats.members,
            stats.singletons,
            stats.unmodeled.total(),
            stats.executed_fraction() * 100.0,
            stats.collapse_factor()
        );
        total.faults += stats.faults;
        total.decided += stats.decided;
        total.live_classes += stats.live_classes;
        total.members += stats.members;
        total.singletons += stats.singletons;
        total.unmodeled.sira32_fpr += stats.unmodeled.sira32_fpr;
        total.unmodeled.mem += stats.unmodeled.mem;
        total.unmodeled.text += stats.unmodeled.text;
    }
    println!(
        "{:<22} {:>5} {:>5} {:>5} {:>5} {:>5} {:>6} {:>8.1}% {:>8.1}x",
        "TOTAL",
        total.faults,
        total.decided,
        total.live_classes,
        total.members,
        total.singletons,
        total.unmodeled.total(),
        total.executed_fraction() * 100.0,
        total.collapse_factor()
    );
    eprintln!("planned in {:.1}s", start.elapsed().as_secs_f64());
    if let Some(bar) = gate {
        let fraction = total.executed_fraction();
        assert!(
            fraction <= bar,
            "class-collapse gate failed: executed fraction {:.3} > {bar}",
            fraction
        );
        println!("gate ok: executed fraction {fraction:.3} <= {bar}");
    }
}
