//! Plan-side collapse report for `--prune-classes`: per-scenario
//! equivalence-class statistics over the sampled fault list — executed
//! fraction, collapse factor, decided/live/member/singleton breakdown
//! and per-reason unmodeled-target counts — without running a single
//! injection (each scenario costs one traced golden run).
//!
//! ```text
//! stats_classes [--isa ...] [--model ...] [--app NAME] [--cores N]
//!               [--faults N] [--seed N] [--text-faults] [--gate F]
//! ```
//!
//! `--gate F` turns the report into a CI check: exit 1 unless the
//! aggregate executed fraction over the selected scenarios is ≤ `F`.
//! The paper-facing acceptance bar is `--app EP --gate 0.5`: class
//! pruning must execute at most half of the sampled faults across the
//! EP programming-model × ISA matrix. With `--text-faults` the sampled
//! space is instruction-memory bits instead of registers, and the gate
//! checks the decode-differential collapse (`--app EP --gate 0.6`).

use fracas::inject::{campaign_faults, class_plan, golden_trace, FaultSpace, Workload};
use fracas::mine::CollapseSummary;
use fracas_bench::cli::{Parser, ScenarioFilter};
use std::time::Instant;

const USAGE: &str = "stats_classes [--isa sira32|sira64] [--model ser|omp|mpi] [--app NAME] \
     [--cores N] [--faults N] [--seed N] [--text-faults] [--gate F]";

const HEADER: &str =
    "scenario                 flts   dec  live   mem  sing  fpr32 umem utxt  executed  collapse";

#[allow(clippy::too_many_lines)]
fn main() {
    let mut filter = ScenarioFilter::default();
    let mut faults: Option<usize> = None;
    let mut seed: Option<u64> = None;
    let mut gate: Option<f64> = None;
    let mut text_faults = false;
    let mut p = Parser::new(USAGE);
    while let Some(flag) = p.next_flag() {
        if filter.accept(&mut p, &flag) {
            continue;
        }
        match flag.as_str() {
            "--faults" => faults = Some(p.parsed(&flag)),
            "--seed" => seed = Some(p.parsed(&flag)),
            "--gate" => gate = Some(p.parsed(&flag)),
            "--text-faults" => text_faults = true,
            other => p.unknown(other),
        }
    }
    let mut config = fracas_bench::config();
    if let Some(v) = faults {
        config.faults = v;
    }
    if let Some(v) = seed {
        config.seed = v;
    }
    if text_faults {
        config.space = FaultSpace::only("text");
    }
    let scenarios = filter.scenarios();
    eprintln!(
        "class-planning {} scenario(s) at {} {} faults each (seed {})...",
        scenarios.len(),
        config.faults,
        if text_faults { "text" } else { "register" },
        config.seed
    );
    let start = Instant::now();
    println!("{HEADER}");
    let mut total = CollapseSummary::default();
    for s in &scenarios {
        let workload = Workload::from_scenario(s).unwrap_or_else(|e| panic!("{}: {e}", s.id()));
        let (report, trace) = golden_trace(&workload);
        let sampled = campaign_faults(&workload, &config, report.cycles);
        let stats = class_plan(&workload, &trace, &sampled).stats();
        println!(
            "{:<22} {:>6} {:>5} {:>5} {:>5} {:>5} {:>6} {:>4} {:>4} {:>8.1}% {:>8.1}x",
            s.id(),
            stats.faults,
            stats.decided,
            stats.live_classes,
            stats.members,
            stats.singletons,
            stats.unmodeled.sira32_fpr,
            stats.unmodeled.mem,
            stats.unmodeled.text,
            stats.executed_fraction() * 100.0,
            stats.collapse_factor()
        );
        total.add(&stats);
    }
    println!(
        "{:<22} {:>6} {:>5} {:>5} {:>5} {:>5} {:>6} {:>4} {:>4} {:>8.1}% {:>8.1}x",
        "TOTAL",
        total.stats.faults,
        total.stats.decided,
        total.stats.live_classes,
        total.stats.members,
        total.stats.singletons,
        total.stats.unmodeled.sira32_fpr,
        total.stats.unmodeled.mem,
        total.stats.unmodeled.text,
        total.executed_fraction() * 100.0,
        total.collapse_factor()
    );
    eprintln!("planned in {:.1}s", start.elapsed().as_secs_f64());
    if let Some(bar) = gate {
        let fraction = total.executed_fraction();
        assert!(
            fraction <= bar,
            "class-collapse gate failed: executed fraction {:.3} > {bar}",
            fraction
        );
        let unmodeled = total.stats.unmodeled.breakdown();
        println!(
            "gate ok: executed fraction {fraction:.3} <= {bar} (decided {:.3}{})",
            total.decided_fraction(),
            if unmodeled.is_empty() {
                String::new()
            } else {
                format!(", unmodeled {unmodeled}")
            }
        );
    }
}
