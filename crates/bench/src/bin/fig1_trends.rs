//! Figure 1: evolution of commercial processors 1970–2018 — transistor
//! count, core count and process node. Prints the three series the
//! paper's motivational figure plots.

fn main() {
    println!("Figure 1: processor evolution (embedded historical dataset)");
    println!(
        "{:<6} {:<34} {:>15} {:>6} {:>10}",
        "Year", "Processor", "Transistors", "Cores", "Node (nm)"
    );
    for p in fracas::mine::trend_rows() {
        println!(
            "{:<6} {:<34} {:>15} {:>6} {:>10.0}",
            p.year, p.name, p.transistors, p.cores, p.node_nm
        );
    }
    let rows = fracas::mine::trend_rows();
    let first = rows.first().expect("dataset non-empty");
    let last = rows.last().expect("dataset non-empty");
    println!();
    println!(
        "transistor growth {:.1e}x, node shrink {:.0}x, cores {}x over {} years",
        last.transistors as f64 / first.transistors as f64,
        first.node_nm / last.node_nm,
        last.cores / first.cores,
        last.year - first.year
    );
}
