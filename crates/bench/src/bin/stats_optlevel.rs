//! Future-work experiment: "explore the relationship of compiler flags
//! and application behaviour regarding soft errors" (paper §5).
//!
//! Compares fault-injection outcomes of the same applications compiled
//! at `-O0` (all locals in memory) and the default register-allocating
//! level, on both ISAs. All eight workload variants run as one fleet
//! sweep on the orchestrator's shared worker pool.

use fracas::inject::{run_fleet, Workload};
use fracas::lang::OptLevel;
use fracas::npb::{App, Model, Scenario};
use fracas::prelude::*;

fn main() {
    let config = fracas_bench::fleet_config();
    println!(
        "Compiler-flag reliability sweep ({} faults/run). -O0 keeps locals in memory;\n\
         -O1 promotes them to registers (the default everywhere else).\n",
        config.campaign.faults
    );
    println!(
        "{:<22} {:>5} {:>12} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "Scenario", "Opt", "Instrs", "Mem%", "Vanish", "ONA", "OMM", "UT", "Hang"
    );
    let mut labels = Vec::new();
    let mut workloads = Vec::new();
    for isa in IsaKind::ALL {
        for app in [App::Is, App::Cg] {
            let scenario = Scenario::new(app, Model::Serial, 1, isa).expect("serial exists");
            for (name, opt) in [("O0", OptLevel::O0), ("O1", OptLevel::O1)] {
                labels.push((scenario.id(), name));
                workloads.push(
                    Workload::from_scenario_with(&scenario, opt)
                        .unwrap_or_else(|e| panic!("{}: {e}", scenario.id())),
                );
            }
        }
    }
    for ((id, name), result) in labels.iter().zip(run_fleet(&workloads, &config)) {
        println!(
            "{:<22} {:>5} {:>12} {:>8.1} {:>8.1} {:>8.1} {:>8.1} {:>8.1} {:>8.1}",
            id,
            name,
            result.golden.instructions,
            result.profile.mem_ratio * 100.0,
            result.tally.pct(Outcome::Vanished),
            result.tally.pct(Outcome::Ona),
            result.tally.pct(Outcome::Omm),
            result.tally.pct(Outcome::Ut),
            result.tally.pct(Outcome::Hang),
        );
    }
    println!(
        "\n-O0 shifts live state from registers into the (uninjected) stack, so\n\
         register flips hit dead values more often — masking typically rises —\n\
         while the memory-transaction share grows, feeding the UT channel."
    );
}
