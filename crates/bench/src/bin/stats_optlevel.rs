//! Future-work experiment: "explore the relationship of compiler flags
//! and application behaviour regarding soft errors" (paper §5).
//!
//! Compares fault-injection outcomes of the same applications compiled
//! at `-O0` (all locals in memory) and the default register-allocating
//! level, on both ISAs.

use fracas::inject::{run_campaign, Workload};
use fracas::lang::OptLevel;
use fracas::npb::{App, Model, Scenario};
use fracas::prelude::*;

fn main() {
    let config = fracas_bench::config();
    println!(
        "Compiler-flag reliability sweep ({} faults/run). -O0 keeps locals in memory;\n\
         -O1 promotes them to registers (the default everywhere else).\n",
        config.faults
    );
    println!(
        "{:<22} {:>5} {:>12} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "Scenario", "Opt", "Instrs", "Mem%", "Vanish", "ONA", "OMM", "UT", "Hang"
    );
    for isa in IsaKind::ALL {
        for app in [App::Is, App::Cg] {
            let scenario = Scenario::new(app, Model::Serial, 1, isa).expect("serial exists");
            for (name, opt) in [("O0", OptLevel::O0), ("O1", OptLevel::O1)] {
                let workload = Workload::from_scenario_with(&scenario, opt)
                    .unwrap_or_else(|e| panic!("{}: {e}", scenario.id()));
                let result = run_campaign(&workload, &config);
                println!(
                    "{:<22} {:>5} {:>12} {:>8.1} {:>8.1} {:>8.1} {:>8.1} {:>8.1} {:>8.1}",
                    scenario.id(),
                    name,
                    result.golden.instructions,
                    result.profile.mem_ratio * 100.0,
                    result.tally.pct(Outcome::Vanished),
                    result.tally.pct(Outcome::Ona),
                    result.tally.pct(Outcome::Omm),
                    result.tally.pct(Outcome::Ut),
                    result.tally.pct(Outcome::Hang),
                );
            }
        }
    }
    println!(
        "\n-O0 shifts live state from registers into the (uninjected) stack, so\n\
         register flips hit dead values more often — masking typically rises —\n\
         while the memory-transaction share grows, feeding the UT channel."
    );
}
