//! Binary-level dead-write lint over linked NPB images: runs
//! `fracas_lang::check_text_warnings` (CFG + liveness projections of
//! `fracas_isa::effects`) on every selected scenario's text section and
//! reports emitted-but-provably-dead register writes.
//!
//! ```text
//! lint_text [--isa sira32|sira64] [--model ser|omp|mpi] [--app NAME] [--cores N]
//!           [--max N] [--baseline PATH] [--bless] [--verbose]
//! ```
//!
//! The corpus is not warning-free: the O1 backend materialises FL's
//! mandatory literal `let` initializers even when a loop init
//! immediately rewrites the register (the same pattern the AST lint
//! exempts by design). Two regression gates exist:
//!
//! * `--max N` — exit 1 when the total exceeds a flat budget.
//! * `--baseline PATH` — exit 1 when any *per-scenario* count drifts
//!   from the checked-in blessed file (`baselines/lint_text.txt`; CI's
//!   gate). `--bless` regenerates the file from the current build
//!   instead of comparing, so an intentional backend change is a
//!   one-command re-bless with a reviewable diff.

use fracas::inject::Workload;
use fracas::lang::check_text_warnings;
use fracas_bench::cli::{Parser, ScenarioFilter};
use std::path::PathBuf;

const USAGE: &str = "lint_text [--isa sira32|sira64] [--model ser|omp|mpi] [--app NAME] \
     [--cores N] [--max N] [--baseline PATH] [--bless] [--verbose]";

fn main() {
    let mut filter = ScenarioFilter::default();
    let mut max: Option<usize> = None;
    let mut baseline: Option<PathBuf> = None;
    let mut bless = false;
    let mut verbose = false;
    let mut p = Parser::new(USAGE);
    while let Some(flag) = p.next_flag() {
        if filter.accept(&mut p, &flag) {
            continue;
        }
        match flag.as_str() {
            "--max" => max = Some(p.parsed(&flag)),
            "--baseline" => baseline = Some(PathBuf::from(p.value(&flag))),
            "--bless" => bless = true,
            "--verbose" => verbose = true,
            other => p.unknown(other),
        }
    }
    if bless && baseline.is_none() {
        eprintln!("--bless requires --baseline PATH");
        p.usage();
    }
    let scenarios = filter.scenarios();
    let mut counts: Vec<(String, usize)> = Vec::new();
    let mut total = 0usize;
    for s in &scenarios {
        let workload = Workload::from_scenario(s).unwrap_or_else(|e| panic!("{}: {e}", s.id()));
        let warnings = check_text_warnings(s.isa, &workload.image.text);
        if !warnings.is_empty() {
            println!("{}: {} dead write(s)", s.id(), warnings.len());
            if verbose {
                for w in &warnings {
                    println!("  {w}");
                }
            }
            total += warnings.len();
        }
        counts.push((s.id(), warnings.len()));
    }
    println!(
        "text lint: {total} dead write(s) across {} image(s)",
        counts.len()
    );
    if let Some(path) = &baseline {
        if bless {
            let mut text = String::from(
                "# Blessed per-scenario dead-write counts; regenerate with\n\
                 # `lint_text --baseline <this file> --bless` after an\n\
                 # intentional backend change.\n",
            );
            for (id, n) in &counts {
                text.push_str(&format!("{id} {n}\n"));
            }
            text.push_str(&format!("total {total}\n"));
            std::fs::write(path, text).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
            println!("blessed {} scenario(s) -> {}", counts.len(), path.display());
            return;
        }
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
        let mut expected = std::collections::HashMap::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (id, n) = line.rsplit_once(' ').unwrap_or_else(|| {
                panic!("malformed baseline line {line:?} in {}", path.display())
            });
            let n: usize = n
                .parse()
                .unwrap_or_else(|_| panic!("bad count in baseline line {line:?}"));
            expected.insert(id.to_string(), n);
        }
        let mut drifted = 0usize;
        for (id, n) in &counts {
            match expected.get(id) {
                Some(want) if want == n => {}
                Some(want) => {
                    println!("DRIFT {id}: {n} dead write(s), baseline says {want}");
                    drifted += 1;
                }
                None => {
                    println!("DRIFT {id}: {n} dead write(s), not in baseline");
                    drifted += 1;
                }
            }
        }
        if drifted > 0 {
            println!(
                "{drifted} scenario(s) drifted from {}; if intentional, re-bless with \
                 `lint_text --baseline {} --bless`",
                path.display(),
                path.display()
            );
            std::process::exit(1);
        }
        println!("matches baseline {} ({total} dead writes)", path.display());
    }
    if let Some(budget) = max {
        if total > budget {
            println!("budget exceeded: {total} > {budget}");
            std::process::exit(1);
        }
        println!("within budget ({total} <= {budget})");
    }
}
