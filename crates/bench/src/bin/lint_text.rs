//! Binary-level dead-write lint over linked NPB images: runs
//! `fracas_lang::check_text_warnings` (CFG + liveness projections of
//! `fracas_isa::effects`) on every selected scenario's text section and
//! reports emitted-but-provably-dead register writes.
//!
//! ```text
//! lint_text [--isa sira32|sira64] [--model ser|omp|mpi] [--app NAME] [--cores N]
//!           [--max N] [--verbose]
//! ```
//!
//! The corpus is not warning-free: the O1 backend materialises FL's
//! mandatory literal `let` initializers even when a loop init
//! immediately rewrites the register (1,598 such movs across all 130
//! images at the time of writing — the same pattern the AST lint
//! exempts by design). `--max N` turns the run into a regression gate:
//! exit 1 when the total exceeds the recorded budget, so new dead
//! writes cannot slip into the backend unnoticed.

use fracas::inject::Workload;
use fracas::lang::check_text_warnings;
use fracas_bench::cli::{Parser, ScenarioFilter};

const USAGE: &str = "lint_text [--isa sira32|sira64] [--model ser|omp|mpi] [--app NAME] \
     [--cores N] [--max N] [--verbose]";

fn main() {
    let mut filter = ScenarioFilter::default();
    let mut max: Option<usize> = None;
    let mut verbose = false;
    let mut p = Parser::new(USAGE);
    while let Some(flag) = p.next_flag() {
        if filter.accept(&mut p, &flag) {
            continue;
        }
        match flag.as_str() {
            "--max" => max = Some(p.parsed(&flag)),
            "--verbose" => verbose = true,
            other => p.unknown(other),
        }
    }
    let scenarios = filter.scenarios();
    let mut total = 0usize;
    let mut linted = 0usize;
    for s in &scenarios {
        let workload = Workload::from_scenario(s).unwrap_or_else(|e| panic!("{}: {e}", s.id()));
        let warnings = check_text_warnings(s.isa, &workload.image.text);
        linted += 1;
        if !warnings.is_empty() {
            println!("{}: {} dead write(s)", s.id(), warnings.len());
            if verbose {
                for w in &warnings {
                    println!("  {w}");
                }
            }
            total += warnings.len();
        }
    }
    println!("text lint: {total} dead write(s) across {linted} image(s)");
    if let Some(budget) = max {
        if total > budget {
            println!("budget exceeded: {total} > {budget}");
            std::process::exit(1);
        }
        println!("within budget ({total} <= {budget})");
    }
}
