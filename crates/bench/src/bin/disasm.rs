//! Developer tool: disassemble a scenario's linked image.
//!
//! ```sh
//! cargo run --release -p fracas-bench --bin disasm -- is-ser-1-sira32 [max_lines]
//! ```

use fracas::isa::Section;
use fracas::mine::parse_id;
use fracas::npb::Scenario;

fn main() {
    let mut args = std::env::args().skip(1);
    let id = args.next().unwrap_or_else(|| "is-ser-1-sira64".to_string());
    let max: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(120);

    let Some(key) = parse_id(&id) else {
        eprintln!("unparseable scenario id `{id}` (expected e.g. ft-mpi-4-sira64)");
        std::process::exit(2);
    };
    let Some(scenario) = Scenario::new(key.app, key.model, key.cores, key.isa) else {
        eprintln!("scenario `{id}` does not exist in the suite");
        std::process::exit(2);
    };
    let image = scenario.build().unwrap_or_else(|e| panic!("{id}: {e}"));

    println!(
        "{id}: {} instructions, {} bytes data template, entry {:#010x}",
        image.text.len(),
        image.data_size(),
        image.entry
    );
    let mut last_fn = String::new();
    for (i, inst) in image.text.iter().enumerate() {
        if i >= max {
            println!("... ({} more instructions)", image.text.len() - i);
            break;
        }
        let addr = image.text_base + (i as u32) * 4;
        if let Some(sym) = image.symbols.function_at(addr) {
            if sym.name != last_fn {
                last_fn = sym.name.clone();
                println!("\n<{}>:", sym.name);
            }
        }
        println!("  {addr:#010x}:  {:08x}  {inst}", fracas::isa::encode(inst));
    }
    println!("\ndata symbols (GB-relative):");
    let mut data: Vec<_> = image
        .symbols
        .iter()
        .filter(|s| s.section == Section::Data)
        .collect();
    data.sort_by_key(|s| s.value);
    for s in data.iter().take(40) {
        println!("  +{:#06x}  {}", s.value, s.name);
    }
}
