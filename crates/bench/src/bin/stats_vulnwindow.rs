//! §4.2.2's vulnerability windows, per function: for selected parallel
//! scenarios, print the hottest guest functions by attributed cycles and
//! the share spent inside the parallelization API and softfloat layers.

use fracas::npb::{App, Model, Scenario};
use fracas::prelude::*;

fn main() {
    let mut scenarios = Vec::new();
    for isa in IsaKind::ALL {
        for (app, model) in [(App::Cg, Model::Omp), (App::Cg, Model::Mpi)] {
            if let Some(s) = Scenario::new(app, model, 4, isa) {
                scenarios.push(s);
            }
        }
    }
    let db = fracas_bench::ensure_db(&scenarios);
    for s in &scenarios {
        let Some(c) = db.get(Key {
            app: s.app,
            model: s.model,
            cores: s.cores,
            isa: s.isa,
        }) else {
            continue;
        };
        println!(
            "{}  (API window {:.1} %, softfloat {:.1} %, idle {:.1} % of cycles)",
            c.id,
            c.profile.api_cycle_fraction * 100.0,
            c.profile.softfloat_cycle_fraction * 100.0,
            c.profile.idle_cycles as f64 * 100.0 / (c.profile.cycles as f64).max(1.0),
        );
        let total: u64 = c.profile.top_functions.iter().map(|(_, v)| *v).sum();
        for (name, cycles) in &c.profile.top_functions {
            println!(
                "    {:<24} {:>12} cycles  {:>5.1} % of top-12",
                name,
                cycles,
                *cycles as f64 * 100.0 / (total as f64).max(1.0)
            );
        }
        println!();
    }
    println!(
        "The paper bounds the parallelization-API window at 23 % in the worst case;\n\
         with real-sized workloads the API functions are a small slice of the\n\
         application's total exposure."
    );
}
