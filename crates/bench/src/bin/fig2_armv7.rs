//! Figures 2a/2b/2c: NPB fault-injection outcome distributions and the
//! MPI-vs-OMP mismatch on the ARMv7-like processor (SIRA-32).

use fracas::isa::IsaKind;
use fracas::mine::{mismatch_table, outcome_table};
use fracas::npb::Model;

fn main() {
    let isa = IsaKind::Sira32;
    let db = fracas_bench::ensure_db(&fracas_bench::scenarios_for_isa(isa));
    println!("Figure 2a: ARMv7-like MPI benchmarks");
    println!("{}", outcome_table(&db, isa, Model::Mpi));
    println!("Figure 2b: ARMv7-like OMP benchmarks");
    println!("{}", outcome_table(&db, isa, Model::Omp));
    println!("Figure 2c: ARMv7-like MPI-vs-OMP mismatch");
    println!("{}", mismatch_table(&db, isa));
}
