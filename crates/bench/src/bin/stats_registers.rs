//! §4.1.2's critical-register claim, measured: per-register crash rates
//! (UT + Hang share of hits) aggregated over the whole campaign
//! database, for both ISAs.

use fracas::isa::IsaKind;
use fracas::mine::register_criticality;
use fracas::npb::Scenario;

fn name32(reg: u32) -> String {
    match reg {
        11 => "r11(GB)".into(),
        13 => "r13(SP)".into(),
        14 => "r14(LR)".into(),
        15 => "r15(PC)".into(),
        r => format!("r{r}"),
    }
}

fn name64(reg: u32) -> String {
    match reg {
        28 => "x28(GB)".into(),
        30 => "x30(LR)".into(),
        31 => "SP".into(),
        r => format!("x{r}"),
    }
}

fn main() {
    let db = fracas_bench::ensure_db(&Scenario::all());
    for isa in IsaKind::ALL {
        let mut crit = register_criticality(&db, isa);
        crit.sort_by(|a, b| b.crash_rate().partial_cmp(&a.crash_rate()).expect("finite"));
        println!(
            "{isa} ({}) — registers by crash rate (UT+Hang share of hits):",
            isa.analogue()
        );
        println!(
            "{:<10} {:>6} {:>9} {:>9} {:>9} {:>11}",
            "Register", "Hits", "Masked", "UT", "Hang", "Crash rate"
        );
        for c in crit.iter().filter(|c| c.hits > 0) {
            let name = match isa {
                IsaKind::Sira32 => name32(c.reg),
                IsaKind::Sira64 => name64(c.reg),
            };
            println!(
                "{:<10} {:>6} {:>9} {:>9} {:>9} {:>10.1}%",
                name,
                c.hits,
                c.masked,
                c.ut,
                c.hang,
                c.crash_rate() * 100.0
            );
        }
        println!();
    }
    println!(
        "Expected pattern (paper 4.1.2/4.1.4): the PC, SP and the address-bearing\n\
         argument registers crash far above the file average; high callee-saved\n\
         registers mask almost everything."
    );
}
