//! §4.2.2: masking-rate comparison over every MPI/OMP scenario pair,
//! per-core workload balance and the parallelization-API vulnerability
//! window.

use fracas::mine::masking_comparison;
use fracas::npb::Scenario;

fn main() {
    let db = fracas_bench::ensure_db(&Scenario::all());
    let s = masking_comparison(&db);
    println!("Masking comparison over MPI/OMP pairs (paper: MPI wins 38 of 44)");
    println!("  comparable pairs:          {}", s.pairs);
    println!("  MPI higher masking rate:   {}", s.mpi_wins);
    println!();
    println!("Workload balance, per-core instruction imbalance (paper: ~4% MPI, up to 16% OMP)");
    println!(
        "  MPI mean imbalance:        {:.1} %",
        s.mpi_imbalance * 100.0
    );
    println!(
        "  OMP mean imbalance:        {:.1} %",
        s.omp_imbalance * 100.0
    );
    println!();
    println!("Execution time (paper: OMP ~16% shorter than MPI on average)");
    println!("  mean OMP/MPI cycle ratio:  {:.2}", s.omp_cycle_ratio);
    println!();
    println!("Vulnerability window (paper: < 23% worst case)");
    println!(
        "  max API cycle fraction:    {:.1} %",
        s.max_api_window * 100.0
    );
}
