//! §4.2.2: masking-rate comparison over every MPI/OMP scenario pair,
//! per-core workload balance and the parallelization-API vulnerability
//! window.
//!
//! The report body lives in [`fracas_bench::reports::masking_report`]
//! and is pinned by a golden-file test on a tiny fixed-seed campaign.

use fracas::npb::Scenario;

fn main() {
    let db = fracas_bench::ensure_db(&Scenario::all());
    print!("{}", fracas_bench::reports::masking_report(&db));
}
