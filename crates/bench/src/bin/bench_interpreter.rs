//! Interpreter-throughput baseline: times the EP golden run and records
//! committed guest instructions per host second in
//! `BENCH_interpreter.json`, seeding the perf trajectory for later
//! optimisation PRs.
//!
//! ```text
//! bench_interpreter [--isa sira32|sira64] [--model ser|omp|mpi] [--app NAME]
//!                   [--cores N] [--reps N] [--out PATH]
//! ```
//!
//! Defaults to `--app ep` (both ISAs, every model/core count): EP is
//! embarrassingly parallel with a tiny memory footprint, so its golden
//! run is interpreter-bound and the steps/sec figure tracks raw
//! dispatch cost rather than cache modelling. Each selected scenario is
//! golden-run `--reps` times (default 3) and the best rate is kept —
//! standard practice for wall-clock microbenchmarks, where the minimum
//! is the least noisy estimator. The effect checker is forced off so
//! the number measures the production fast path.

use fracas::inject::{golden_run, Workload};
use fracas::npb::App;
use fracas_bench::cli::{Parser, ScenarioFilter};
use std::time::Instant;

const USAGE: &str = "bench_interpreter [--isa sira32|sira64] [--model ser|omp|mpi] [--app NAME]\n\
     \u{20}                 [--cores N] [--reps N] [--out PATH]";

fn main() {
    // Measure the production fast path even under a CI environment
    // that exports the checker knob.
    std::env::remove_var("FRACAS_CHECK_EFFECTS");
    let mut filter = ScenarioFilter::default();
    let mut reps: usize = 3;
    let mut out = String::from("BENCH_interpreter.json");
    let mut p = Parser::new(USAGE);
    while let Some(flag) = p.next_flag() {
        if filter.accept(&mut p, &flag) {
            continue;
        }
        match flag.as_str() {
            "--reps" => reps = p.parsed(&flag),
            "--out" => out = p.value(&flag),
            other => p.unknown(other),
        }
    }
    if filter.app.is_none() {
        filter.app = Some(App::Ep);
    }
    let scenarios = filter.scenarios();
    let reps = reps.max(1);

    let mut rows = Vec::new();
    let (mut total_insts, mut total_secs) = (0u64, 0f64);
    for s in &scenarios {
        let workload = Workload::from_scenario(s).unwrap_or_else(|e| panic!("{}: {e}", s.id()));
        let mut best: Option<(u64, f64)> = None;
        for _ in 0..reps {
            let start = Instant::now();
            let (report, _) = golden_run(&workload);
            let secs = start.elapsed().as_secs_f64();
            let insts = report.total_instructions();
            if best.is_none_or(|(_, b)| secs < b) {
                best = Some((insts, secs));
            }
        }
        let (insts, secs) = best.expect("reps >= 1");
        let rate = insts as f64 / secs;
        eprintln!(
            "  {}: {insts} instructions in {secs:.3}s = {:.2} Minst/s",
            s.id(),
            rate / 1e6
        );
        total_insts += insts;
        total_secs += secs;
        rows.push(format!(
            "    {{\"scenario\": \"{}\", \"instructions\": {insts}, \"seconds\": {secs:.6}, \"steps_per_sec\": {:.0}}}",
            s.id(),
            rate
        ));
    }
    let aggregate = total_insts as f64 / total_secs;
    // Hand-rolled JSON: two scalar fields and an array of flat records.
    let json = format!(
        "{{\n  \"bench\": \"interpreter_golden_run\",\n  \"reps\": {reps},\n  \
         \"aggregate_steps_per_sec\": {aggregate:.0},\n  \"scenarios\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("write {out}: {e}"));
    println!(
        "interpreter: {:.2} Minst/s aggregate over {} scenario(s) -> {out}",
        aggregate / 1e6,
        scenarios.len()
    );
}
