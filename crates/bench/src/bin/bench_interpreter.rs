//! Interpreter-throughput baseline: times the EP golden run and records
//! committed guest instructions per host second in
//! `BENCH_interpreter.json`.
//!
//! ```text
//! bench_interpreter [--isa sira32|sira64] [--model ser|omp|mpi] [--app NAME]
//!                   [--cores N] [--reps N] [--min-ms N] [--out PATH]
//!                   [--gate PATH]
//! ```
//!
//! Defaults to `--app ep` (both ISAs, every model/core count): EP is
//! embarrassingly parallel with a tiny memory footprint, so its golden
//! run is interpreter-bound and the steps/sec figure tracks raw
//! dispatch cost rather than cache modelling.
//!
//! Measurement protocol (the trustworthy-throughput half of the bench):
//!
//! - **Minimum wall time per repetition.** A single short golden run is
//!   dominated by timer granularity and scheduling noise; each rep
//!   repeats the golden run until at least `--min-ms` (default 250)
//!   of wall time has accumulated and reports the aggregate rate.
//! - **Warmup rep discarded.** The first rep pays one-time costs (page
//!   faults, frequency ramp, cold caches) and is thrown away.
//! - **Median of reps.** The median of `--reps` (default 5) measured
//!   reps is kept — robust against a stray descheduling spike in either
//!   direction, unlike best-of (optimistic) or mean (skewed by tails).
//! - **Provenance stamping.** The JSON records the git revision and
//!   rustc version that produced it, so a committed baseline can be
//!   audited ("what exactly produced this 18.4 Minst/s?").
//!
//! The effect checker is forced off so the number measures the
//! production fast path. With `--gate PATH` the run compares its
//! aggregate against the `aggregate_steps_per_sec` recorded in an
//! earlier JSON (the committed baseline) and fails — exit code 1 —
//! on a regression of more than 10%, giving CI a perf trend gate.
//! Each scenario is additionally gated against its own baseline row at
//! a looser 25% tolerance: a single scenario can crater (say, a store
//! path regression that only bites the memory-heavy configuration)
//! while enough others improve to keep the aggregate green. Scenarios
//! absent from the baseline file are skipped, so widening the matrix
//! does not require regenerating the baseline first.

use fracas::inject::{golden_run, Workload};
use fracas::npb::App;
use fracas_bench::cli::{Parser, ScenarioFilter};
use std::process::Command;
use std::time::Instant;

const USAGE: &str = "bench_interpreter [--isa sira32|sira64] [--model ser|omp|mpi] [--app NAME]\n\
     \u{20}                 [--cores N] [--reps N] [--min-ms N] [--out PATH] [--gate PATH]";

/// Largest tolerated drop of `aggregate_steps_per_sec` vs the gate
/// baseline before the run fails.
const GATE_TOLERANCE: f64 = 0.10;

/// Largest tolerated drop of a single scenario's `steps_per_sec` vs its
/// baseline row. Looser than the aggregate gate: per-scenario medians
/// carry more noise than the pooled rate, and the gate's job is to
/// catch a configuration-specific cratering, not a wobble.
const SCENARIO_TOLERANCE: f64 = 0.25;

/// One measured repetition: golden-runs the workload until `min_ms` of
/// wall time has accumulated, returning (instructions, seconds).
fn one_rep(workload: &Workload, min_ms: u64) -> (u64, f64) {
    let mut insts = 0u64;
    let start = Instant::now();
    loop {
        let (report, _) = golden_run(workload);
        insts += report.total_instructions();
        let secs = start.elapsed().as_secs_f64();
        if secs * 1e3 >= min_ms as f64 {
            return (insts, secs);
        }
    }
}

/// First line of a command's stdout, or "unknown" if it cannot run
/// (e.g. no git binary or not a work tree — the bench still works).
fn probe(cmd: &str, args: &[&str]) -> String {
    Command::new(cmd)
        .args(args)
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| {
            String::from_utf8(o.stdout)
                .ok()
                .and_then(|s| s.lines().next().map(str::to_owned))
        })
        .unwrap_or_else(|| String::from("unknown"))
}

/// Extracts the number following `key` in `text` (the files are
/// produced by this binary, so a full JSON parser is overkill).
fn number_after(text: &str, key: &str) -> Option<f64> {
    let rest = text[text.find(key)? + key.len()..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Pulls `"aggregate_steps_per_sec": <number>` out of a baseline JSON.
fn baseline_rate(text: &str, path: &str) -> f64 {
    number_after(text, "\"aggregate_steps_per_sec\":")
        .unwrap_or_else(|| panic!("{path}: no usable aggregate_steps_per_sec field"))
}

/// Pulls scenario `id`'s `steps_per_sec` row out of a baseline JSON,
/// or `None` when the baseline predates the scenario.
fn baseline_scenario_rate(text: &str, id: &str) -> Option<f64> {
    let at = text.find(&format!("\"scenario\": \"{id}\""))?;
    let end = at + text[at..].find('}')?;
    number_after(&text[at..end], "\"steps_per_sec\":")
}

fn main() {
    // Measure the production fast path even under a CI environment
    // that exports the checker knob.
    std::env::remove_var("FRACAS_CHECK_EFFECTS");
    let mut filter = ScenarioFilter::default();
    let mut reps: usize = 5;
    let mut min_ms: u64 = 250;
    let mut out = String::from("BENCH_interpreter.json");
    let mut gate: Option<String> = None;
    let mut p = Parser::new(USAGE);
    while let Some(flag) = p.next_flag() {
        if filter.accept(&mut p, &flag) {
            continue;
        }
        match flag.as_str() {
            "--reps" => reps = p.parsed(&flag),
            "--min-ms" => min_ms = p.parsed(&flag),
            "--out" => out = p.value(&flag),
            "--gate" => gate = Some(p.value(&flag)),
            other => p.unknown(other),
        }
    }
    if filter.app.is_none() {
        filter.app = Some(App::Ep);
    }
    let scenarios = filter.scenarios();
    let reps = reps.max(1);

    let mut rows = Vec::new();
    let mut rates: Vec<(String, f64)> = Vec::new();
    let (mut total_insts, mut total_secs) = (0u64, 0f64);
    for s in &scenarios {
        let workload = Workload::from_scenario(s).unwrap_or_else(|e| panic!("{}: {e}", s.id()));
        // Warmup rep: same work as a measured rep, result discarded.
        let _ = one_rep(&workload, min_ms);
        let mut measured: Vec<(u64, f64)> = (0..reps).map(|_| one_rep(&workload, min_ms)).collect();
        measured.sort_by(|a, b| {
            let ra = a.0 as f64 / a.1;
            let rb = b.0 as f64 / b.1;
            ra.partial_cmp(&rb).expect("rates are finite")
        });
        let (insts, secs) = measured[measured.len() / 2];
        let rate = insts as f64 / secs;
        eprintln!(
            "  {}: {insts} instructions in {secs:.3}s = {:.2} Minst/s (median of {reps})",
            s.id(),
            rate / 1e6
        );
        total_insts += insts;
        total_secs += secs;
        rows.push(format!(
            "    {{\"scenario\": \"{}\", \"instructions\": {insts}, \"seconds\": {secs:.6}, \"steps_per_sec\": {rate:.0}}}",
            s.id()
        ));
        rates.push((s.id(), rate));
    }
    let aggregate = total_insts as f64 / total_secs;
    let git_rev = probe("git", &["rev-parse", "--short", "HEAD"]);
    let rustc = probe("rustc", &["--version"]);
    // Hand-rolled JSON: scalar provenance fields and an array of flat
    // per-scenario records.
    let json = format!(
        "{{\n  \"bench\": \"interpreter_golden_run\",\n  \"git_rev\": \"{git_rev}\",\n  \
         \"rustc\": \"{rustc}\",\n  \"reps\": {reps},\n  \"min_ms\": {min_ms},\n  \
         \"aggregate_steps_per_sec\": {aggregate:.0},\n  \"scenarios\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("write {out}: {e}"));
    println!(
        "interpreter: {:.2} Minst/s aggregate over {} scenario(s) -> {out}",
        aggregate / 1e6,
        scenarios.len()
    );

    if let Some(base_path) = gate {
        let text =
            std::fs::read_to_string(&base_path).unwrap_or_else(|e| panic!("read {base_path}: {e}"));
        let base = baseline_rate(&text, &base_path);
        let floor = base * (1.0 - GATE_TOLERANCE);
        let mut failed = false;
        if aggregate < floor {
            eprintln!(
                "REGRESSION: {:.2} Minst/s is below the gate floor {:.2} Minst/s \
                 (baseline {:.2} from {base_path})",
                aggregate / 1e6,
                floor / 1e6,
                base / 1e6
            );
            failed = true;
        }
        for (id, rate) in &rates {
            let Some(base) = baseline_scenario_rate(&text, id) else {
                eprintln!("gate: {id} has no baseline row, skipped");
                continue;
            };
            let floor = base * (1.0 - SCENARIO_TOLERANCE);
            if *rate < floor {
                eprintln!(
                    "REGRESSION: {id}: {:.2} Minst/s is below its scenario floor {:.2} \
                     Minst/s (baseline {:.2} from {base_path})",
                    rate / 1e6,
                    floor / 1e6,
                    base / 1e6
                );
                failed = true;
            }
        }
        if failed {
            std::process::exit(1);
        }
        println!(
            "gate: {:.2} Minst/s >= floor {:.2} Minst/s (baseline {:.2} from {base_path}), \
             {} scenario row(s) within {:.0}%",
            aggregate / 1e6,
            floor / 1e6,
            base / 1e6,
            rates.len(),
            SCENARIO_TOLERANCE * 100.0
        );
    }
}
