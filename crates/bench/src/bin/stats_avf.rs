//! Static-vs-dynamic vulnerability cross-check: the `fracas-analyze`
//! liveness model's per-register static AVF (fraction of committed
//! cycles each register is live) correlated against the measured
//! per-register criticality of the injection campaigns, per scenario.
//!
//! A positive AVF↔crash correlation (and the mirror-image negative
//! AVF↔masked correlation) is the sanity check that the ACE-style
//! static analysis ranks registers the same way real injections do.

use fracas::analyze::{static_avf, Cfg, Liveness, StaticAvf};
use fracas::inject::{golden_trace, Workload};
use fracas::isa::IsaKind;
use fracas::mine::{pearson, register_criticality, Database, RegisterCriticality};
use fracas::npb::{Model, Scenario};

/// Serial single-core scenarios of one ISA: the cheapest golden runs,
/// and the configuration where static liveness is most comparable to
/// the dynamic outcomes (no scheduler interleaving across cores).
fn scenarios(isa: IsaKind) -> Vec<Scenario> {
    Scenario::all()
        .into_iter()
        .filter(|s| s.isa == isa && s.model == Model::Serial && s.cores == 1)
        .collect()
}

/// Computes the static AVF of one scenario from a traced golden run.
fn analyze_scenario(scenario: &Scenario) -> StaticAvf {
    let workload = Workload::from_scenario(scenario).expect("bundled scenario builds");
    let (_, trace) = golden_trace(&workload);
    let cfg = Cfg::recover(workload.image.isa, &workload.image.text);
    let liveness = Liveness::compute(&cfg, &workload.image.text);
    static_avf(
        workload.image.isa,
        &liveness,
        workload.image.text_base,
        &trace,
    )
}

/// Pearson r between static AVF and a dynamic per-register statistic,
/// over the registers the campaign actually hit.
fn correlate(
    avf: &StaticAvf,
    crit: &[RegisterCriticality],
    stat: impl Fn(&RegisterCriticality) -> f64,
) -> f64 {
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for c in crit.iter().filter(|c| c.hits > 0) {
        xs.push(avf.gprs[c.reg as usize]);
        ys.push(stat(c));
    }
    pearson(&xs, &ys)
}

fn main() {
    for isa in IsaKind::ALL {
        let scenarios = scenarios(isa);
        let db = fracas_bench::ensure_db(&scenarios);
        println!(
            "{isa} ({}) — static AVF vs dynamic register criticality:",
            isa.analogue()
        );
        println!(
            "{:<18} {:>9} {:>12} {:>13}",
            "Scenario", "mean AVF", "r(AVF,crash)", "r(AVF,masked)"
        );
        let mut crash_rs = Vec::new();
        for scenario in &scenarios {
            let avf = analyze_scenario(scenario);
            let campaign = db
                .get(fracas::mine::Key {
                    app: scenario.app,
                    model: scenario.model,
                    cores: scenario.cores,
                    isa: scenario.isa,
                })
                .expect("ensure_db swept this scenario")
                .clone();
            let crit = register_criticality(&Database::from_campaigns(vec![campaign]), isa);
            let mean = avf.gprs.iter().sum::<f64>() / avf.gprs.len() as f64;
            let r_crash = correlate(&avf, &crit, RegisterCriticality::crash_rate);
            let r_masked = correlate(&avf, &crit, |c| c.masked as f64 / c.hits as f64);
            println!(
                "{:<18} {:>8.1}% {:>12.2} {:>13.2}",
                scenario.id(),
                mean * 100.0,
                r_crash,
                r_masked
            );
            crash_rs.push(r_crash);
        }
        let mean_r = crash_rs.iter().sum::<f64>() / crash_rs.len() as f64;
        println!(
            "mean r(AVF,crash) over {} scenarios: {mean_r:.2}",
            crash_rs.len()
        );
        println!();
    }
    println!(
        "Expected pattern: live registers crash, dead registers mask — the\n\
         static ranking should agree with the injections (positive crash\n\
         correlation, negative masked correlation) on most scenarios."
    );
}
