//! Text-fault decidability report: how much of the instruction-memory
//! fault space the decode-differential analysis settles statically, per
//! scenario, against the architectural-register baseline — all
//! plan-side (each scenario costs one traced golden run, zero
//! injections).
//!
//! ```text
//! stats_textfault [--isa ...] [--model ...] [--app NAME] [--cores N]
//!                 [--faults N] [--seed N]
//! ```
//!
//! Defaults to the paper's EP programming-model × ISA matrix (pass
//! `--app` to override). Three views per scenario:
//!
//! * **Sampled plan** — the `--prune-classes` class plan over a
//!   text-only fault sample: statically decided share, executed share,
//!   collapse factor; the same columns for a register sample of the
//!   same size ride alongside for comparison.
//! * **Static composition** — every (word, bit) flip of the whole text
//!   section classed by decode differential (`fracas::analyze::
//!   analyze_text`): the decode-equivalent share is provably Vanished
//!   at *any* cycle, before the trace is even consulted.
//! * **Reachability cross-check** — every word the golden trace fetched
//!   must be CFG-reachable (`fracas::analyze::cfg_reachable_words`);
//!   a violation means the static CFG under-approximates real control
//!   flow and aborts the report.

use fracas::analyze::{analyze_text, cfg_reachable_words, FlipClass, PruneOracle};
use fracas::inject::{campaign_faults, class_plan, golden_trace, FaultSpace, Workload};
use fracas::mine::CollapseSummary;
use fracas::npb::App;
use fracas_bench::cli::{Parser, ScenarioFilter};
use std::time::Instant;

const USAGE: &str = "stats_textfault [--isa sira32|sira64] [--model ser|omp|mpi] [--app NAME] \
     [--cores N] [--faults N] [--seed N]";

fn main() {
    let mut filter = ScenarioFilter::default();
    let mut faults: Option<usize> = None;
    let mut seed: Option<u64> = None;
    let mut p = Parser::new(USAGE);
    while let Some(flag) = p.next_flag() {
        if filter.accept(&mut p, &flag) {
            continue;
        }
        match flag.as_str() {
            "--faults" => faults = Some(p.parsed(&flag)),
            "--seed" => seed = Some(p.parsed(&flag)),
            other => p.unknown(other),
        }
    }
    if filter.app.is_none() {
        filter.app = Some(App::Ep);
    }
    let mut text_config = fracas_bench::config();
    if let Some(v) = faults {
        text_config.faults = v;
    }
    if let Some(v) = seed {
        text_config.seed = v;
    }
    text_config.space = FaultSpace::only("text");
    let mut reg_config = text_config.clone();
    reg_config.space = FaultSpace::default();
    let scenarios = filter.scenarios();
    eprintln!(
        "text-fault planning {} scenario(s) at {} faults each (seed {})...",
        scenarios.len(),
        text_config.faults,
        text_config.seed
    );
    let start = Instant::now();
    println!(
        "{:<22} {:>6} | {:>5} {:>5} {:>7} {:>6} | {:>7} {:>6} | {:>6} {:>6} {:>6}",
        "scenario",
        "words",
        "flts",
        "dec",
        "exec%",
        "clps",
        "r-exe%",
        "r-clps",
        "equiv%",
        "ill%",
        "fetch%"
    );
    let mut text_total = CollapseSummary::default();
    let mut reg_total = CollapseSummary::default();
    for s in &scenarios {
        let workload = Workload::from_scenario(s).unwrap_or_else(|e| panic!("{}: {e}", s.id()));
        let image = &workload.image;
        let (report, trace) = golden_trace(&workload);
        // One golden trace feeds both plans: the sampled spaces differ,
        // the oracle does not.
        let text_sampled = campaign_faults(&workload, &text_config, report.cycles);
        let text_stats = class_plan(&workload, &trace, &text_sampled).stats();
        let reg_sampled = campaign_faults(&workload, &reg_config, report.cycles);
        let reg_stats = class_plan(&workload, &trace, &reg_sampled).stats();
        // Static decode-differential composition over the whole text.
        let words: Vec<u32> = image.text.iter().map(fracas::isa::encode).collect();
        let composition = analyze_text(image.isa, &words);
        // Reachability cross-check: fetched ⊆ CFG-reachable.
        let oracle = PruneOracle::new(image.isa, &image.text, image.text_base, &trace);
        let reachable = cfg_reachable_words(image.isa, &image.text);
        let fetched: Vec<u32> = (0..words.len() as u32)
            .filter(|&w| oracle.text_fetched(w))
            .collect();
        let escaped: Vec<u32> = fetched
            .iter()
            .copied()
            .filter(|&w| !reachable[w as usize])
            .collect();
        assert!(
            escaped.is_empty(),
            "{}: golden trace fetched CFG-unreachable word(s) {escaped:?} — \
             the static CFG under-approximates real control flow",
            s.id()
        );
        #[allow(clippy::cast_precision_loss)]
        let fetched_pct = 100.0 * fetched.len() as f64 / words.len().max(1) as f64;
        println!(
            "{:<22} {:>6} | {:>5} {:>5} {:>6.1}% {:>5.1}x | {:>6.1}% {:>5.1}x | {:>5.1}% {:>5.1}% {:>5.1}%",
            s.id(),
            words.len(),
            text_stats.faults,
            text_stats.decided,
            text_stats.executed_fraction() * 100.0,
            text_stats.collapse_factor(),
            reg_stats.executed_fraction() * 100.0,
            reg_stats.collapse_factor(),
            composition.fraction(FlipClass::Equivalent) * 100.0,
            composition.fraction(FlipClass::Illegal) * 100.0,
            fetched_pct,
        );
        text_total.add(&text_stats);
        reg_total.add(&reg_stats);
    }
    println!(
        "{:<22} {:>6} | {:>5} {:>5} {:>6.1}% {:>5.1}x | {:>6.1}% {:>5.1}x |",
        "TOTAL",
        "",
        text_total.stats.faults,
        text_total.stats.decided,
        text_total.executed_fraction() * 100.0,
        text_total.collapse_factor(),
        reg_total.executed_fraction() * 100.0,
        reg_total.collapse_factor(),
    );
    println!(
        "text: {:.1}% statically decided, {} unmodeled (self-patched) of {} sampled",
        text_total.decided_fraction() * 100.0,
        text_total.stats.unmodeled.text,
        text_total.stats.faults,
    );
    eprintln!("planned in {:.1}s", start.elapsed().as_secs_f64());
}
