//! Table 4: ARMv8-like memory transactions against the soft-error
//! classification — LU and SP under OMP, FT under MPI, at 1/2/4 cores.

use fracas::isa::IsaKind;
use fracas::mine::{mem_table, Key};
use fracas::npb::{App, Model, Scenario};

fn main() {
    let isa = IsaKind::Sira64;
    let groups = [
        (App::Lu, Model::Omp),
        (App::Sp, Model::Omp),
        (App::Ft, Model::Mpi),
    ];
    let mut scenarios = Vec::new();
    let mut keys = Vec::new();
    for (app, model) in groups {
        for cores in [1u32, 2, 4] {
            if let Some(s) = Scenario::new(app, model, cores, isa) {
                scenarios.push(s);
                keys.push(Key {
                    app,
                    model,
                    cores,
                    isa,
                });
            }
        }
    }
    let db = fracas_bench::ensure_db(&scenarios);
    println!("Table 4: ARMv8-like memory transactions vs soft-error classes");
    println!(
        "{:<12} {:>16} {:>8} {:>14} {:>10}",
        "Scenario", "Vanish+OMM+ONA", "UT", "Mem. Inst. (%)", "RD/WR"
    );
    for row in mem_table(&db, &keys) {
        println!(
            "{:<12} {:>16.1} {:>8.1} {:>14.1} {:>10.2}",
            row.label, row.survived_pct, row.ut_pct, row.mem_pct, row.rd_wr
        );
    }
    println!();
    println!("paper's claim: falling memory-transaction share (LU/SP A-C, D-F) tracks a");
    println!("falling UT share, while FT's constant share (G-I) keeps UT steady.");
}
