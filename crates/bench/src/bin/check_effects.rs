//! Conformance gate: golden-runs scenarios with the runtime effect
//! checker enabled (`FRACAS_CHECK_EFFECTS=1`) and fails on the first
//! divergence between the interpreter and the declared
//! `fracas_isa::effects` table.
//!
//! ```text
//! check_effects [--isa sira32|sira64] [--model ser|omp|mpi] [--app NAME] [--cores N]
//! ```
//!
//! Every committed instruction of every selected golden execution is
//! verified — register/flag writes, PC update, trap class, cycle charge
//! and event counters — so a clean exit here is the dynamic half of the
//! proof that the prune oracle and the machine share one model (the
//! static half is the read-perturbation differential in
//! `crates/isa/tests/effects_props.rs`). CI runs one NPB corpus pass
//! per ISA; locally, run it unfiltered for the full 130-scenario sweep.
//! A violation panics with the offending instruction and address.

use fracas::inject::{golden_run, Workload};
use fracas_bench::cli::{Parser, ScenarioFilter};
use std::time::Instant;

const USAGE: &str =
    "check_effects [--isa sira32|sira64] [--model ser|omp|mpi] [--app NAME] [--cores N]";

fn main() {
    // Before any machine is constructed, so the cached env default
    // turns checking on for every golden run below.
    std::env::set_var("FRACAS_CHECK_EFFECTS", "1");
    let mut filter = ScenarioFilter::default();
    let mut p = Parser::new(USAGE);
    while let Some(flag) = p.next_flag() {
        if !filter.accept(&mut p, &flag) {
            p.unknown(&flag);
        }
    }
    let scenarios = filter.scenarios();
    eprintln!("effect-checking {} golden execution(s)...", scenarios.len());
    let start = Instant::now();
    let mut checked: u64 = 0;
    for (i, s) in scenarios.iter().enumerate() {
        let workload = Workload::from_scenario(s).unwrap_or_else(|e| panic!("{}: {e}", s.id()));
        let (report, _) = golden_run(&workload);
        let n = report.total_instructions();
        checked += n;
        eprintln!(
            "  [{}/{}] {}: {} instructions conform",
            i + 1,
            scenarios.len(),
            s.id(),
            n
        );
    }
    println!(
        "effects conformance: {checked} instructions across {} scenario(s), 0 violations ({:.1}s)",
        scenarios.len(),
        start.elapsed().as_secs_f64()
    );
}
