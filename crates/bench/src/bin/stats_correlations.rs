//! The §3.4 exploratory mining sweep: Pearson correlation of every
//! profile metric against every outcome rate, over the full campaign
//! database (and per-ISA slices).

use fracas::mine::{correlation_matrix, strongest, RATES};
use fracas::npb::Scenario;

fn print_matrix(title: &str, matrix: &[fracas::mine::Correlation]) {
    println!("{title}");
    print!("{:<26}", "metric \\ rate");
    for r in RATES {
        print!("{r:>9}");
    }
    println!();
    let mut metric = "";
    for cell in matrix {
        if cell.metric != metric {
            if !metric.is_empty() {
                println!();
            }
            metric = cell.metric;
            print!("{metric:<26}");
        }
        print!("{:>+9.2}", cell.r);
    }
    println!("\n");
}

fn main() {
    let db = fracas_bench::ensure_db(&Scenario::all());
    let all = correlation_matrix(&db, |_| true);
    print_matrix(
        &format!("Correlation matrix over all {} campaigns:", db.len()),
        &all,
    );
    for isa in ["sira32", "sira64"] {
        let m = correlation_matrix(&db, |c| c.id.ends_with(isa));
        print_matrix(&format!("{isa} slice:"), &m);
    }
    println!("Strongest relationships overall:");
    for c in strongest(&all, 8) {
        println!(
            "  {:<26} ~ {:<7} r = {:+.2}  (n = {})",
            c.metric, c.rate, c.r, c.n
        );
    }
}
