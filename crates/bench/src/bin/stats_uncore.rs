//! Uncore fault-model report: measured outcome composition of the
//! cache-metadata, kernel-control, instruction-skip, store-buffer and
//! cache-data fault spaces, per scenario, against the
//! architectural-register baseline — plus the skip-severity cross-check
//! (static [`SkipClass`] prediction vs the measured masking rate) and
//! the accounting gate that proves no uncore fault ever falls through
//! the prune layer silently.
//!
//! ```text
//! stats_uncore [--isa ...] [--model ...] [--app NAME] [--cores N]
//!              [--faults N] [--seed N] [--gate]
//! ```
//!
//! Defaults to the paper's EP programming-model × ISA matrix (pass
//! `--app` to override). One class-pruned campaign per scenario *per
//! domain* — a combined space would be useless here, because the L2
//! metadata bits outnumber the skip bits five orders of magnitude and
//! uniform sampling would never draw a skip — plus one over the
//! register baseline. With `--gate`, accounting violations fail the
//! run; it is the CI hook behind the "no silent `None`" guarantee:
//!
//! * every uncore fault is either statically decided (provably never
//!   applied → Vanished) or tallied in its explicit per-domain
//!   [`Unmodeled`] bucket;
//! * no uncore fault lands in a foreign bucket (any bucket but the
//!   campaign domain's own);
//! * no harness anomalies anywhere;
//! * no domain is *vacuous* — a domain whose sampled faults all come
//!   back Vanished over a nonzero aggregate sample cannot distinguish
//!   anything and its rows are meaningless, unless it is on the
//!   documented expected-quiet allowlist (cache metadata: timing-only
//!   by design; kernel-control: measured non-masking rate below smoke
//!   sample resolution).

use fracas::analyze::{analyze_skips, skip_class, PruneOracle, SkipClass, SkipComposition};
use fracas::inject::{run_campaign, FaultSpace, FaultTarget, Outcome, Tally, Unmodeled, Workload};
use fracas::mine::{labeled_outcome_table, CollapseSummary};
use fracas::npb::App;
use fracas_bench::cli::{Parser, ScenarioFilter};
use std::time::Instant;

const USAGE: &str = "stats_uncore [--isa sira32|sira64] [--model ser|omp|mpi] [--app NAME] \
     [--cores N] [--faults N] [--seed N] [--gate]";

/// The registry domains under report, display order.
const UNCORE: [&str; 5] = ["cache", "kernelctl", "skip", "storebuf", "cachedata"];

/// Masking-rate column labels, parallel to [`UNCORE`].
const SHORT: [&str; 5] = ["cache%", "kctl%", "skip%", "sbuf%", "cdata%"];

/// Domains documented as expected-quiet, with the reason: for these a
/// 100%-Vanished aggregate at smoke sample sizes is the *expected*
/// result, not a vacuity violation. Cache metadata is timing-only by
/// design; kernel-control's measured non-masking rate (~0.1% UT — one
/// resurrected-waiter stall per ~1k faults) is real but far below what
/// a smoke sample can be required to exhibit deterministically. Every
/// other domain must show life or the gate fails — the check that
/// caught the cache-data dilution regression.
const EXPECTED_QUIET: [(&str, &str); 2] = [
    (
        "cache",
        "timing-only metadata: values live in the L1D/store-buffer layers",
    ),
    (
        "kernelctl",
        "measured ~0.1% UT rate, below smoke-sample resolution",
    ),
];

/// The [`Unmodeled`] bucket a domain's own applied faults land in;
/// anything else is a foreign-bucket accounting violation.
fn own_bucket(name: &str) -> Unmodeled {
    match name {
        "cache" => Unmodeled::Cache,
        "kernelctl" => Unmodeled::KernelCtl,
        "skip" => Unmodeled::Skip,
        "storebuf" => Unmodeled::StoreBuf,
        "cachedata" => Unmodeled::CacheData,
        other => unreachable!("{other} is not an uncore domain"),
    }
}

fn main() {
    let mut filter = ScenarioFilter::default();
    let mut faults: Option<usize> = None;
    let mut seed: Option<u64> = None;
    let mut gate = false;
    let mut p = Parser::new(USAGE);
    while let Some(flag) = p.next_flag() {
        if filter.accept(&mut p, &flag) {
            continue;
        }
        match flag.as_str() {
            "--faults" => faults = Some(p.parsed(&flag)),
            "--seed" => seed = Some(p.parsed(&flag)),
            "--gate" => gate = true,
            other => p.unknown(other),
        }
    }
    if filter.app.is_none() {
        filter.app = Some(App::Ep);
    }
    let mut base = fracas_bench::config();
    if let Some(v) = faults {
        base.faults = v;
    }
    if let Some(v) = seed {
        base.seed = v;
    }
    base.prune_classes = true;
    let mut reg_config = base.clone();
    reg_config.space = FaultSpace::default();
    let scenarios = filter.scenarios();
    eprintln!(
        "uncore campaigns over {} scenario(s), {} domains x {} faults each (seed {})...",
        scenarios.len(),
        UNCORE.len(),
        base.faults,
        base.seed
    );
    let start = Instant::now();
    let mut header = format!("{:<22} {:>5} |", "scenario", "flts");
    for label in SHORT {
        header.push_str(&format!(" {label:>6}"));
    }
    header.push_str(&format!(" | {:>6} | {:>5} {:>5}", "r-msk%", "dec", "unm"));
    println!("{header}");
    // Aggregates across scenarios: per-domain outcome tallies, the
    // register baseline, skip severity, and the collapse accounting.
    let mut domain_tallies: Vec<(String, Tally)> = UNCORE
        .iter()
        .map(|&d| (d.to_string(), Tally::default()))
        .collect();
    let mut reg_tally = Tally::default();
    let mut static_skips = SkipComposition::default();
    let mut measured_skips = SkipComposition::default();
    let mut masked_skips = SkipComposition::default();
    let mut unapplied_skips: u64 = 0;
    let mut summary = CollapseSummary::default();
    let mut violations: Vec<String> = Vec::new();
    for s in &scenarios {
        let workload = Workload::from_scenario(s).unwrap_or_else(|e| panic!("{}: {e}", s.id()));
        let image = &workload.image;
        let reg = run_campaign(&workload, &reg_config);
        if reg.tally.anomaly != 0 {
            violations.push(format!("{}: register-baseline anomaly outcomes", s.id()));
        }
        fold_tally(&mut reg_tally, &reg.tally);
        // The skip campaign maps its records back to the dropped
        // instructions through the golden trace.
        let (_, trace) = fracas::inject::golden_trace(&workload);
        let oracle = PruneOracle::new(image.isa, &image.text, image.text_base, &trace);
        let mut row = Vec::new();
        let mut decided = 0;
        let mut unmodeled = 0;
        for (name, (_, total)) in UNCORE.iter().zip(domain_tallies.iter_mut()) {
            let mut config = base.clone();
            config.space = FaultSpace::only(name);
            let result = run_campaign(&workload, &config);
            let stats = result.classes.expect("class-pruned campaign carries stats");
            summary.add(&stats);
            // Accounting gate: decided + explicitly-bucketed must cover
            // the whole sample, with nothing in a foreign bucket.
            if u64::from(stats.decided + stats.unmodeled.total()) != result.tally.total() {
                violations.push(format!(
                    "{}/{name}: {} decided + {} unmodeled != {} faults — a fault fell through",
                    s.id(),
                    stats.decided,
                    stats.unmodeled.total(),
                    result.tally.total()
                ));
            }
            let foreign = stats.unmodeled.total() - stats.unmodeled.count(own_bucket(name));
            if foreign != 0 {
                violations.push(format!(
                    "{}/{name}: {foreign} fault(s) in foreign unmodeled bucket(s): {}",
                    s.id(),
                    stats.unmodeled.breakdown()
                ));
            }
            if result.tally.anomaly != 0 {
                violations.push(format!("{}/{name}: harness anomaly outcomes", s.id()));
            }
            for r in &result.records {
                if !matches!(r.fault.target, FaultTarget::InstrSkip { .. }) {
                    continue;
                }
                match oracle.skipped_pc(r.fault.timing_core(), r.fault.cycle) {
                    Some(pc) => {
                        let word = ((pc - image.text_base) / 4) as usize;
                        let class = skip_class(image.isa, &image.text[word]);
                        measured_skips.record(class);
                        if r.outcome.is_masked() {
                            masked_skips.record(class);
                        }
                    }
                    // The timing core halted first: never applied,
                    // decided Vanished by the static landing rule.
                    None => unapplied_skips += 1,
                }
            }
            row.push(result.tally.masking_rate() * 100.0);
            decided += stats.decided;
            unmodeled += stats.unmodeled.total();
            fold_tally(total, &result.tally);
        }
        static_skips = fold_composition(static_skips, &analyze_skips(image.isa, &image.text));
        let mut line = format!("{:<22} {:>5} |", s.id(), base.faults * UNCORE.len());
        for rate in &row {
            line.push_str(&format!(" {rate:>5.1}%"));
        }
        line.push_str(&format!(
            " | {:>5.1}% | {:>5} {:>5}",
            reg.tally.masking_rate() * 100.0,
            decided,
            unmodeled,
        ));
        println!("{line}");
    }
    // The vacuity gate, over the *aggregate* per-domain tallies (a
    // single scenario can legitimately come back all-Vanished at small
    // sample sizes; every scenario doing so means the domain cannot
    // produce an SDC at all — PR 9's cache-metadata regression).
    for (name, tally) in &domain_tallies {
        let total = tally.total();
        if total == 0 || tally.count(Outcome::Vanished) != total {
            continue;
        }
        if let Some((_, why)) = EXPECTED_QUIET.iter().find(|(n, _)| *n == name.as_str()) {
            eprintln!(
                "note: domain {name} is 100% Vanished over {total} fault(s) — allowlisted: {why}"
            );
        } else {
            violations.push(format!(
                "domain {name}: all {total} sampled fault(s) Vanished across every \
                 scenario — the domain is vacuous as a reliability instrument"
            ));
        }
    }
    println!();
    let mut rows = domain_tallies;
    rows.push(("register".to_string(), reg_tally));
    print!("{}", labeled_outcome_table(&rows));
    println!();
    println!(
        "{:<8} {:>8} {:>9} {:>7}   (skip severity: static share vs measured masking)",
        "class", "static%", "sampled", "mask%"
    );
    for class in SkipClass::ALL {
        let n = measured_skips.count(class);
        #[allow(clippy::cast_precision_loss)]
        let masked_pct = if n == 0 {
            0.0
        } else {
            100.0 * masked_skips.count(class) as f64 / n as f64
        };
        println!(
            "{:<8} {:>7.1}% {:>9} {:>6.1}%",
            class.name(),
            static_skips.fraction(class) * 100.0,
            n,
            masked_pct,
        );
    }
    println!(
        "skips: {} applied + {} unapplied (statically Vanished); \
         uncore: {:.1}% decided, unmodeled buckets {}",
        measured_skips.total(),
        unapplied_skips,
        summary.decided_fraction() * 100.0,
        if summary.stats.unmodeled.total() == 0 {
            "empty".to_string()
        } else {
            summary.stats.unmodeled.breakdown()
        },
    );
    eprintln!("measured in {:.1}s", start.elapsed().as_secs_f64());
    if !violations.is_empty() {
        for v in &violations {
            eprintln!("VIOLATION: {v}");
        }
        if gate {
            eprintln!("--gate: {} accounting violation(s)", violations.len());
            std::process::exit(1);
        }
    } else if gate {
        eprintln!("--gate: accounting clean");
    }
}

/// Adds `from` into `into`, outcome by outcome.
fn fold_tally(into: &mut Tally, from: &Tally) {
    for outcome in Outcome::ALL_WITH_ANOMALY {
        into.record_weighted(outcome, from.count(outcome));
    }
}

/// Sums two skip compositions class by class.
fn fold_composition(mut into: SkipComposition, from: &SkipComposition) -> SkipComposition {
    for class in SkipClass::ALL {
        for _ in 0..from.count(class) {
            into.record(class);
        }
    }
    into
}
