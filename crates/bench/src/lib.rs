//! # fracas-bench — shared harness plumbing for the table/figure binaries
//!
//! Every `src/bin/*` target regenerates one of the paper's tables or
//! figures. They share a campaign database so the expensive injection
//! work runs once:
//!
//! * `FRACAS_DB` (default `fracas_campaigns.jsonl`) — the JSON-lines
//!   database file. [`ensure_db`] loads it, runs campaigns only for
//!   scenarios not yet covered, and saves it back.
//! * `FRACAS_FAULTS` — injections per scenario (default 60; the paper
//!   used 8,000 on a 5,000-core cluster).
//! * `FRACAS_SEED`, `FRACAS_THREADS` — see
//!   [`fracas::inject::CampaignConfig::from_env`].

use fracas::inject::{CampaignConfig, CampaignResult};
use fracas::mine::{parse_id, Database};
use fracas::npb::Scenario;
use std::path::PathBuf;
use std::time::Instant;

/// The database path from `FRACAS_DB` (default `fracas_campaigns.jsonl`
/// in the working directory).
pub fn db_path() -> PathBuf {
    std::env::var_os("FRACAS_DB")
        .map_or_else(|| PathBuf::from("fracas_campaigns.jsonl"), PathBuf::from)
}

/// The campaign configuration from the environment, with the harness
/// default of 60 injections per scenario.
pub fn config() -> CampaignConfig {
    let mut config = CampaignConfig::from_env();
    if std::env::var_os("FRACAS_FAULTS").is_none() {
        config.faults = 60;
    }
    config
}

/// Loads the shared database, runs campaigns for any of `scenarios` not
/// yet present (printing progress), appends them and saves the file.
///
/// # Panics
///
/// Panics if a bundled scenario fails to build or the database file is
/// unreadable/corrupt — both indicate a broken installation rather than
/// user input.
pub fn ensure_db(scenarios: &[Scenario]) -> Database {
    let path = db_path();
    let mut db = match std::fs::read_to_string(&path) {
        Ok(text) => Database::from_json_lines(&text)
            .unwrap_or_else(|e| panic!("corrupt database {}: {e}", path.display())),
        Err(_) => Database::new(),
    };
    let config = config();
    let missing: Vec<&Scenario> = scenarios
        .iter()
        .filter(|s| {
            db.get(fracas::mine::Key {
                app: s.app,
                model: s.model,
                cores: s.cores,
                isa: s.isa,
            })
            .is_none()
        })
        .collect();
    if missing.is_empty() {
        return db;
    }
    eprintln!(
        "running {} campaign(s) at {} faults each (cached: {})",
        missing.len(),
        config.faults,
        db.len()
    );
    let start = Instant::now();
    for (i, scenario) in missing.iter().enumerate() {
        let t = Instant::now();
        let result = fracas::run_scenario_campaign(scenario, &config)
            .unwrap_or_else(|e| panic!("{}: {e}", scenario.id()));
        eprintln!(
            "  [{}/{}] {} in {:.1}s  (V {:.0}% O {:.0}% M {:.0}% U {:.0}% H {:.0}%)",
            i + 1,
            missing.len(),
            result.id,
            t.elapsed().as_secs_f64(),
            result.tally.pct(fracas::inject::Outcome::Vanished),
            result.tally.pct(fracas::inject::Outcome::Ona),
            result.tally.pct(fracas::inject::Outcome::Omm),
            result.tally.pct(fracas::inject::Outcome::Ut),
            result.tally.pct(fracas::inject::Outcome::Hang),
        );
        db.push(result);
        // Save incrementally so an interrupted run resumes.
        let _ = std::fs::write(&path, db.to_json_lines());
    }
    eprintln!(
        "campaigns done in {:.1}s -> {}",
        start.elapsed().as_secs_f64(),
        path.display()
    );
    db
}

/// All scenarios of one ISA.
pub fn scenarios_for_isa(isa: fracas::isa::IsaKind) -> Vec<Scenario> {
    Scenario::all()
        .into_iter()
        .filter(|s| s.isa == isa)
        .collect()
}

/// The subset of campaigns in `db` whose ids parse (all of them, in a
/// correct database).
pub fn coverage(db: &Database) -> usize {
    db.iter().filter(|c| parse_id(&c.id).is_some()).count()
}

/// Convenience: a result's five percentages in display order.
pub fn pct_row(result: &CampaignResult) -> [f64; 5] {
    use fracas::inject::Outcome;
    [
        result.tally.pct(Outcome::Vanished),
        result.tally.pct(Outcome::Ona),
        result.tally.pct(Outcome::Omm),
        result.tally.pct(Outcome::Ut),
        result.tally.pct(Outcome::Hang),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_has_harness_fault_count() {
        if std::env::var_os("FRACAS_FAULTS").is_none() {
            assert_eq!(config().faults, 60);
        }
    }

    #[test]
    fn db_path_defaults() {
        if std::env::var_os("FRACAS_DB").is_none() {
            assert_eq!(db_path(), PathBuf::from("fracas_campaigns.jsonl"));
        }
    }
}
