//! # fracas-bench — shared harness plumbing for the table/figure binaries
//!
//! Every `src/bin/*` target regenerates one of the paper's tables or
//! figures. They share a campaign database so the expensive injection
//! work runs once, and all of them drive the fleet orchestrator
//! ([`fracas::inject::run_fleet`]): one shared worker pool over every
//! missing scenario, a streaming record sink for crash-safe mid-campaign
//! resume, per-workload progress lines and optional statistical early
//! stopping.
//!
//! * `FRACAS_DB` (default `fracas_campaigns.jsonl`) — the JSON-lines
//!   database file. [`ensure_db`] loads it, sweeps the scenarios not yet
//!   covered, and saves it back.
//! * `FRACAS_SINK` (default `<db>.wal`) — the in-flight record sink; a
//!   killed sweep resumes from it bit-identically and it is deleted once
//!   the database is saved.
//! * `FRACAS_FAULTS` — injections per scenario (default 60; the paper
//!   used 8,000 on a 5,000-core cluster).
//! * `FRACAS_EPSILON` — Wilson-interval early-stop half-width as a
//!   proportion (default 0 = off; see
//!   [`fracas::inject::FleetConfig::from_env`]).
//! * `FRACAS_PRUNE_CLASSES` — collapse each campaign's fault list into
//!   interval-keyed equivalence classes and execute one representative
//!   per class (default 0 = off; the database stays byte-identical, see
//!   `fracas::inject::class_plan`).
//! * `FRACAS_ORACLE_AUDIT` — with `--prune-dead` or `--prune-classes`,
//!   the fraction of synthesized records (oracle-pruned faults and
//!   class members) to also execute for real and diff against the
//!   synthesized outcome (default 0 = off); any mismatch aborts the
//!   sweep before the database is saved.
//! * `FRACAS_SEED`, `FRACAS_THREADS` — see
//!   [`fracas::inject::CampaignConfig::from_env`].

use fracas::inject::{CampaignConfig, CampaignResult, FleetConfig, Workload};
use fracas::mine::{parse_id, Database};
use fracas::npb::Scenario;
use std::path::{Path, PathBuf};
use std::time::Instant;

pub mod cli;
pub mod reports;

/// The database path from `FRACAS_DB` (default `fracas_campaigns.jsonl`
/// in the working directory).
pub fn db_path() -> PathBuf {
    std::env::var_os("FRACAS_DB")
        .map_or_else(|| PathBuf::from("fracas_campaigns.jsonl"), PathBuf::from)
}

/// The in-flight record-sink path from `FRACAS_SINK` (default: the
/// database path with a `.wal` suffix appended).
pub fn sink_path() -> PathBuf {
    std::env::var_os("FRACAS_SINK").map_or_else(
        || {
            let mut p = db_path().into_os_string();
            p.push(".wal");
            PathBuf::from(p)
        },
        PathBuf::from,
    )
}

/// The campaign configuration from the environment, with the harness
/// default of 60 injections per scenario.
pub fn config() -> CampaignConfig {
    let mut config = CampaignConfig::from_env();
    if std::env::var_os("FRACAS_FAULTS").is_none() {
        config.faults = 60;
    }
    config
}

/// The sweep configuration from the environment: [`config`] plus the
/// ε/confidence knobs, with progress lines enabled.
pub fn fleet_config() -> FleetConfig {
    FleetConfig {
        campaign: config(),
        progress: true,
        ..FleetConfig::from_env()
    }
}

/// Loads the shared database, sweeps any of `scenarios` not yet present
/// through the fleet orchestrator (one shared worker pool, record sink
/// at [`sink_path`], progress on stderr), appends the results and saves
/// the file.
///
/// # Panics
///
/// Panics if a bundled scenario fails to build or the database file is
/// unreadable/corrupt — both indicate a broken installation rather than
/// user input.
pub fn ensure_db(scenarios: &[Scenario]) -> Database {
    run_sweep(scenarios, &fleet_config(), &db_path(), &sink_path())
}

/// The orchestrated sweep behind [`ensure_db`] with explicit paths and
/// configuration (the `sweep` binary's entry point): loads `db_path`,
/// fleet-runs the missing scenarios with crash-safe resume through
/// `sink`, saves the merged database and removes the consumed sink.
///
/// # Panics
///
/// Panics if a bundled scenario fails to build, the database file is
/// corrupt, or the sink file cannot be created.
pub fn run_sweep(
    scenarios: &[Scenario],
    config: &FleetConfig,
    db_path: &Path,
    sink: &Path,
) -> Database {
    let mut db = match std::fs::read_to_string(db_path) {
        Ok(text) => Database::from_json_lines(&text)
            .unwrap_or_else(|e| panic!("corrupt database {}: {e}", db_path.display())),
        Err(_) => Database::new(),
    };
    let missing: Vec<&Scenario> = scenarios
        .iter()
        .filter(|s| {
            db.get(fracas::mine::Key {
                app: s.app,
                model: s.model,
                cores: s.cores,
                isa: s.isa,
            })
            .is_none()
        })
        .collect();
    if missing.is_empty() {
        return db;
    }
    eprintln!(
        "sweeping {} campaign(s) at {} faults each (cached: {}, ε = {}, sink: {})",
        missing.len(),
        config.campaign.faults,
        db.len(),
        config.epsilon,
        sink.display()
    );
    let start = Instant::now();
    let workloads: Vec<Workload> = missing
        .iter()
        .map(|s| Workload::from_scenario(s).unwrap_or_else(|e| panic!("{}: {e}", s.id())))
        .collect();
    let results = fracas::inject::run_fleet_with_sink(&workloads, config, sink)
        .unwrap_or_else(|e| panic!("sink {}: {e}", sink.display()));
    // Oracle audits gate the save: a mismatch means the prune oracle
    // synthesized a wrong record, so persisting the database (or
    // consuming the sink) would cache corrupt results.
    // Class-collapse accounting: how much of each fault list actually
    // executed, and how many targets fell outside the oracle's model.
    for result in &results {
        if let Some(stats) = result.classes {
            let unmodeled = stats.unmodeled.breakdown();
            eprintln!(
                "  classes {}: {}/{} executed ({:.0}%, collapse {:.1}x; \
                 {} decided, {} live classes, {} members, {} singletons{})",
                result.id,
                stats.executed(),
                stats.faults,
                stats.executed_fraction() * 100.0,
                stats.collapse_factor(),
                stats.decided,
                stats.live_classes,
                stats.members,
                stats.singletons,
                if unmodeled.is_empty() {
                    String::new()
                } else {
                    format!("; unmodeled: {unmodeled}")
                },
            );
        }
    }
    let mut mismatches = 0usize;
    for report in results.iter().filter_map(|r| r.audit.as_ref()) {
        eprintln!("  oracle audit {}", report.summary());
        for entry in report.mismatches() {
            eprintln!(
                "    MISMATCH {} record {}: oracle {:?}, execution {:?}",
                report.id, entry.index, entry.oracle, entry.executed
            );
            mismatches += 1;
        }
    }
    assert!(
        mismatches == 0,
        "oracle audit found {mismatches} mismatch(es); database not saved"
    );
    let total = results.len();
    for (i, result) in results.into_iter().enumerate() {
        eprintln!(
            "  [{}/{total}] {}  (V {:.0}% O {:.0}% M {:.0}% U {:.0}% H {:.0}%{})",
            i + 1,
            result.id,
            result.tally.pct(fracas::inject::Outcome::Vanished),
            result.tally.pct(fracas::inject::Outcome::Ona),
            result.tally.pct(fracas::inject::Outcome::Omm),
            result.tally.pct(fracas::inject::Outcome::Ut),
            result.tally.pct(fracas::inject::Outcome::Hang),
            if result.tally.anomaly > 0 {
                format!(
                    " A {:.0}%",
                    result.tally.pct(fracas::inject::Outcome::Anomaly)
                )
            } else {
                String::new()
            },
        );
        db.push(result);
    }
    std::fs::write(db_path, db.to_json_lines())
        .unwrap_or_else(|e| panic!("write {}: {e}", db_path.display()));
    // The sink's records are now owned by the database.
    let _ = std::fs::remove_file(sink);
    eprintln!(
        "sweep done in {:.1}s -> {}",
        start.elapsed().as_secs_f64(),
        db_path.display()
    );
    db
}

/// All scenarios of one ISA.
pub fn scenarios_for_isa(isa: fracas::isa::IsaKind) -> Vec<Scenario> {
    Scenario::all()
        .into_iter()
        .filter(|s| s.isa == isa)
        .collect()
}

/// The subset of campaigns in `db` whose ids parse (all of them, in a
/// correct database).
pub fn coverage(db: &Database) -> usize {
    db.iter().filter(|c| parse_id(&c.id).is_some()).count()
}

/// Convenience: a result's five percentages in display order.
pub fn pct_row(result: &CampaignResult) -> [f64; 5] {
    use fracas::inject::Outcome;
    [
        result.tally.pct(Outcome::Vanished),
        result.tally.pct(Outcome::Ona),
        result.tally.pct(Outcome::Omm),
        result.tally.pct(Outcome::Ut),
        result.tally.pct(Outcome::Hang),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_has_harness_fault_count() {
        if std::env::var_os("FRACAS_FAULTS").is_none() {
            assert_eq!(config().faults, 60);
        }
    }

    #[test]
    fn db_path_defaults() {
        if std::env::var_os("FRACAS_DB").is_none() {
            assert_eq!(db_path(), PathBuf::from("fracas_campaigns.jsonl"));
        }
    }
}
