//! Shared command-line plumbing for the `src/bin/*` binaries.
//!
//! Every table/figure/tool binary accepts the same scenario-selection
//! vocabulary (`--isa`, `--model`, `--app`, `--cores`) and the sweep
//! family adds campaign knobs (`--faults`, `--epsilon`, `--threads`,
//! `--seed`, `--db`, `--sink`, `--prune-dead`, `--prune-classes`). This
//! module keeps the
//! parsing in one place so the binaries stay single-screen `main`s:
//!
//! * [`Parser`] — a minimal flag walker with uniform `usage:` / bad
//!   value / unknown flag diagnostics (exit code 2, matching the
//!   original `sweep` behaviour).
//! * [`ScenarioFilter`] — the four selection flags and their projection
//!   of [`Scenario::all`].
//! * [`SweepOpts`] — filter plus campaign overrides, and the resolution
//!   of database/sink paths and [`FleetConfig`] from flags over
//!   environment defaults.

use fracas::inject::FleetConfig;
use fracas::isa::IsaKind;
use fracas::npb::{App, Model, Scenario};
use std::path::{Path, PathBuf};
use std::process::exit;

/// Walks `std::env::args`, producing flags and their values with
/// uniform error handling. `--help`/`-h` print the usage line and exit.
pub struct Parser {
    usage: &'static str,
    args: std::vec::IntoIter<String>,
}

impl Parser {
    /// A parser over the process arguments; `usage` is the flag summary
    /// printed on any parse error.
    #[must_use]
    pub fn new(usage: &'static str) -> Parser {
        Parser {
            usage,
            args: std::env::args().skip(1).collect::<Vec<_>>().into_iter(),
        }
    }

    /// The next flag, or `None` when the command line is exhausted.
    pub fn next_flag(&mut self) -> Option<String> {
        let flag = self.args.next()?;
        if flag == "--help" || flag == "-h" {
            self.usage();
        }
        Some(flag)
    }

    /// Prints the usage line and exits with status 2.
    pub fn usage(&self) -> ! {
        eprintln!("usage: {}", self.usage);
        exit(2)
    }

    /// The value following `flag`, or a usage error.
    pub fn value(&mut self, flag: &str) -> String {
        self.args.next().unwrap_or_else(|| {
            eprintln!("missing value for {flag}");
            self.usage()
        })
    }

    /// The value following `flag`, parsed as `T`, or a usage error.
    pub fn parsed<T: std::str::FromStr>(&mut self, flag: &str) -> T {
        let text = self.value(flag);
        text.parse().unwrap_or_else(|_| {
            eprintln!("bad value {text:?} for {flag}");
            self.usage()
        })
    }

    /// Rejects an unrecognised flag with a usage error.
    pub fn unknown(&self, flag: &str) -> ! {
        eprintln!("unknown flag {flag}");
        self.usage()
    }
}

/// The four scenario-selection flags shared by every binary that
/// iterates campaigns. Unset fields match everything.
#[derive(Debug, Default, Clone, Copy)]
pub struct ScenarioFilter {
    /// `--isa sira32|sira64`
    pub isa: Option<IsaKind>,
    /// `--model ser|omp|mpi`
    pub model: Option<Model>,
    /// `--app NAME` (case-insensitive NPB kernel name)
    pub app: Option<App>,
    /// `--cores N`
    pub cores: Option<u32>,
}

/// The usage fragment for [`ScenarioFilter`]'s flags.
pub const FILTER_USAGE: &str =
    "[--isa sira32|sira64] [--model ser|omp|mpi] [--app NAME] [--cores N]";

impl ScenarioFilter {
    /// Consumes `flag` (and its value) when it is one of the selection
    /// flags; returns `false` to let the caller try its own flags.
    pub fn accept(&mut self, p: &mut Parser, flag: &str) -> bool {
        match flag {
            "--isa" => {
                self.isa = Some(match p.value(flag).as_str() {
                    "sira32" => IsaKind::Sira32,
                    "sira64" => IsaKind::Sira64,
                    other => {
                        eprintln!("unknown ISA {other}");
                        p.usage()
                    }
                });
            }
            "--model" => {
                self.model = Some(match p.value(flag).as_str() {
                    "ser" | "serial" => Model::Serial,
                    "omp" => Model::Omp,
                    "mpi" => Model::Mpi,
                    other => {
                        eprintln!("unknown model {other}");
                        p.usage()
                    }
                });
            }
            "--app" => {
                let name = p.value(flag).to_uppercase();
                self.app = Some(
                    App::ALL
                        .into_iter()
                        .find(|a| a.name() == name)
                        .unwrap_or_else(|| {
                            eprintln!("unknown app {name}");
                            p.usage()
                        }),
                );
            }
            "--cores" => self.cores = Some(p.parsed(flag)),
            _ => return false,
        }
        true
    }

    /// True when `s` passes every set field.
    #[must_use]
    pub fn matches(&self, s: &Scenario) -> bool {
        self.isa.is_none_or(|isa| s.isa == isa)
            && self.model.is_none_or(|m| s.model == m)
            && self.app.is_none_or(|a| s.app == a)
            && self.cores.is_none_or(|c| s.cores == c)
    }

    /// The matching subset of [`Scenario::all`]; exits with status 1
    /// when the filters select nothing (always a user typo).
    #[must_use]
    pub fn scenarios(&self) -> Vec<Scenario> {
        let out: Vec<Scenario> = Scenario::all()
            .into_iter()
            .filter(|s| self.matches(s))
            .collect();
        if out.is_empty() {
            eprintln!("no scenario matches the given filters");
            exit(1);
        }
        out
    }
}

/// The full sweep-family command line: scenario selection plus campaign
/// configuration overrides. Environment knobs (`FRACAS_FAULTS`, ...)
/// supply defaults; flags win.
#[derive(Debug, Default)]
pub struct SweepOpts {
    /// Scenario selection.
    pub filter: ScenarioFilter,
    /// `--faults N`: injections per scenario.
    pub faults: Option<usize>,
    /// `--epsilon E`: Wilson-interval early-stop half-width.
    pub epsilon: Option<f64>,
    /// `--threads N`: worker-pool size.
    pub threads: Option<usize>,
    /// `--seed N`: campaign PRNG seed.
    pub seed: Option<u64>,
    /// `--db PATH`: campaign database file.
    pub db: Option<PathBuf>,
    /// `--sink PATH`: in-flight record sink.
    pub sink: Option<PathBuf>,
    /// `--prune-dead`: short-circuit provably-masked injections (the
    /// database is byte-identical with or without it, only faster).
    pub prune_dead: bool,
    /// `--prune-classes`: collapse the fault list into interval-keyed
    /// equivalence classes and execute one representative per class
    /// (byte-identical database, fewer executions; composes with
    /// `--prune-dead`).
    pub prune_classes: bool,
    /// `--oracle-audit R`: with `--prune-dead` or `--prune-classes`,
    /// also execute a deterministic fraction `R` of the synthesized
    /// records (pruned faults and class members) for real and fail the
    /// sweep on any oracle-vs-execution mismatch.
    pub oracle_audit: Option<f64>,
    /// `--<domain>-faults` flags, in command-line order: fault-domain
    /// registry names whose spaces replace the architectural-register
    /// default. The first flag resets the space to empty, every flag
    /// enables its domain, so flags compose (`--text-faults` alone is
    /// the decode-differential campaign axis; `--cache-faults
    /// --kernelctl-faults --skip-faults` is the uncore axis).
    pub domains: Vec<&'static str>,
}

/// Resolves a `--<domain>-faults` flag against the fault-domain
/// registry: `Some(domain name)` when the stem names a registered
/// boolean-switch domain, `None` otherwise. Adding a domain to the
/// registry grows the sweep's flag set with no change here.
fn domain_flag(flag: &str) -> Option<&'static str> {
    let stem = flag.strip_prefix("--")?.strip_suffix("-faults")?;
    fracas::inject::domains()
        .iter()
        .find(|d| d.flag == Some(stem))
        .map(|d| d.name)
}

impl SweepOpts {
    /// The usage fragment for the campaign flags (append to
    /// [`FILTER_USAGE`]).
    pub const USAGE: &'static str = "[--faults N] [--epsilon E] [--threads N] [--seed N] \
         [--db PATH] [--sink PATH] [--prune-dead] [--prune-classes] [--oracle-audit R] \
         [--<domain>-faults: gpr|fpr|flag|text|cache|kernelctl|skip|storebuf|cachedata]";

    /// Parses the process arguments, accepting the filter flags and the
    /// campaign overrides.
    #[must_use]
    pub fn parse(usage: &'static str) -> SweepOpts {
        let mut p = Parser::new(usage);
        let mut opts = SweepOpts::default();
        while let Some(flag) = p.next_flag() {
            if opts.filter.accept(&mut p, &flag) {
                continue;
            }
            match flag.as_str() {
                "--faults" => opts.faults = Some(p.parsed(&flag)),
                "--epsilon" => opts.epsilon = Some(p.parsed(&flag)),
                "--threads" => opts.threads = Some(p.parsed(&flag)),
                "--seed" => opts.seed = Some(p.parsed(&flag)),
                "--db" => opts.db = Some(PathBuf::from(p.value(&flag))),
                "--sink" => opts.sink = Some(PathBuf::from(p.value(&flag))),
                "--prune-dead" => opts.prune_dead = true,
                "--prune-classes" => opts.prune_classes = true,
                "--oracle-audit" => opts.oracle_audit = Some(p.parsed(&flag)),
                other => match domain_flag(other) {
                    Some(name) => opts.domains.push(name),
                    None => p.unknown(other),
                },
            }
        }
        opts
    }

    /// [`crate::fleet_config`] with this command line's overrides
    /// applied on top.
    #[must_use]
    pub fn fleet_config(&self) -> FleetConfig {
        let mut config = crate::fleet_config();
        if let Some(v) = self.faults {
            config.campaign.faults = v;
        }
        if let Some(v) = self.epsilon {
            config.epsilon = v;
        }
        if let Some(v) = self.threads {
            config.campaign.threads = v;
        }
        if let Some(v) = self.seed {
            config.campaign.seed = v;
        }
        if self.prune_dead {
            config.campaign.prune_dead = true;
        }
        if self.prune_classes {
            config.campaign.prune_classes = true;
        }
        if let Some(v) = self.oracle_audit {
            config.campaign.oracle_audit = v;
        }
        if !self.domains.is_empty() {
            let mut space = fracas::inject::FaultSpace::none();
            for name in &self.domains {
                let domain = fracas::inject::domain_named(name).expect("parsed from the registry");
                (domain.enable)(&mut space);
            }
            config.campaign.space = space;
        }
        config
    }

    /// The database path: `--db`, else [`crate::db_path`].
    #[must_use]
    pub fn db_path(&self) -> PathBuf {
        self.db.clone().unwrap_or_else(crate::db_path)
    }

    /// The sink path: `--sink`, else the database path with a `.wal`
    /// suffix appended.
    #[must_use]
    pub fn sink_path(&self, db: &Path) -> PathBuf {
        self.sink.clone().unwrap_or_else(|| {
            let mut p = db.to_path_buf().into_os_string();
            p.push(".wal");
            PathBuf::from(p)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_filter_matches_every_scenario() {
        let filter = ScenarioFilter::default();
        assert!(Scenario::all().iter().all(|s| filter.matches(s)));
    }

    #[test]
    fn filter_fields_project_the_suite() {
        let filter = ScenarioFilter {
            isa: Some(IsaKind::Sira64),
            model: Some(Model::Serial),
            app: Some(App::Ep),
            cores: None,
        };
        let hits: Vec<Scenario> = Scenario::all()
            .into_iter()
            .filter(|s| filter.matches(s))
            .collect();
        assert!(!hits.is_empty());
        assert!(hits
            .iter()
            .all(|s| s.isa == IsaKind::Sira64 && s.model == Model::Serial && s.app == App::Ep));
    }

    #[test]
    fn sink_path_appends_wal_to_the_db_path() {
        let opts = SweepOpts::default();
        assert_eq!(
            opts.sink_path(Path::new("/tmp/x.jsonl")),
            PathBuf::from("/tmp/x.jsonl.wal")
        );
    }
}
