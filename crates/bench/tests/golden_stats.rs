//! Golden-file (snapshot) tests for the `stats_composition` and
//! `stats_masking` report bodies on a tiny fixed-seed campaign.
//!
//! The campaign is deterministic (fixed seed, schedule-invariant
//! orchestrator), so these snapshots pin the full formatting *and* the
//! numbers: a bin or orchestrator refactor that silently changes
//! published output fails here. Regenerate intentionally with
//! `FRACAS_BLESS=1 cargo test -p fracas-bench --test golden_stats`.

use fracas::inject::{run_fleet, CampaignConfig, FleetConfig, Workload};
use fracas::mine::Database;
use fracas::npb::{App, Model, Scenario};
use fracas::prelude::IsaKind;
use std::path::PathBuf;
use std::sync::OnceLock;

/// The fixture sweep: one serial + one OMP + one MPI scenario, so both
/// reports have real composition groups and a comparable MPI/OMP pair.
fn fixture_db() -> &'static Database {
    static DB: OnceLock<Database> = OnceLock::new();
    DB.get_or_init(|| {
        let workloads: Vec<Workload> = [
            Scenario::new(App::Is, Model::Serial, 1, IsaKind::Sira64),
            Scenario::new(App::Is, Model::Omp, 2, IsaKind::Sira64),
            Scenario::new(App::Is, Model::Mpi, 2, IsaKind::Sira64),
        ]
        .into_iter()
        .map(|s| Workload::from_scenario(&s.expect("scenario exists")).expect("build"))
        .collect();
        // Explicit configuration: the snapshot must not move with
        // FRACAS_* environment overrides.
        let config = FleetConfig {
            campaign: CampaignConfig {
                faults: 12,
                seed: 0xF_ACA5,
                ..CampaignConfig::default()
            },
            ..FleetConfig::default()
        };
        Database::from_campaigns(run_fleet(&workloads, &config))
    })
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn assert_matches_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("FRACAS_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("mkdir");
        std::fs::write(&path, actual).expect("bless golden file");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); bless with FRACAS_BLESS=1",
            path.display()
        )
    });
    assert_eq!(
        actual, expected,
        "{name} drifted from its golden snapshot; if intentional, re-bless with FRACAS_BLESS=1"
    );
}

#[test]
fn composition_report_matches_golden_file() {
    let report = fracas_bench::reports::composition_report(fixture_db());
    assert_matches_golden("composition.txt", &report);
}

#[test]
fn masking_report_matches_golden_file() {
    let report = fracas_bench::reports::masking_report(fixture_db());
    assert_matches_golden("masking.txt", &report);
}
