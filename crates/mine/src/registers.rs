//! Per-register criticality mining (§4.1.2): which architectural
//! registers turn faults into crashes. The paper argues ARMv7's small
//! file concentrates faults on critical registers (PC, SP, the r0–r3
//! load/store templates), while ARMv8's 4× larger file dilutes them.

use crate::db::{parse_id, Database};
use fracas_inject::{FaultTarget, Outcome};
use fracas_isa::IsaKind;

/// Outcome counts for one architectural register, aggregated over every
/// campaign of one ISA in the database.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RegisterCriticality {
    /// Register index (integer file; SIRA-32 r15 is the PC, r13 the SP).
    pub reg: u32,
    /// Faults that landed on this register.
    pub hits: u64,
    /// ... of which ended masked (Vanished/ONA).
    pub masked: u64,
    /// ... of which ended as UT.
    pub ut: u64,
    /// ... of which ended as Hang.
    pub hang: u64,
}

impl RegisterCriticality {
    /// UT+Hang share of this register's hits — the "criticality".
    pub fn crash_rate(&self) -> f64 {
        if self.hits == 0 {
            0.0
        } else {
            (self.ut + self.hang) as f64 / self.hits as f64
        }
    }
}

/// Aggregates integer-register fault outcomes for one ISA across the
/// whole database, returned indexed by register (length 16 or 32).
pub fn register_criticality(db: &Database, isa: IsaKind) -> Vec<RegisterCriticality> {
    let n = isa.gpr_count() as usize;
    let mut out: Vec<RegisterCriticality> = (0..n)
        .map(|reg| RegisterCriticality {
            reg: reg as u32,
            ..Default::default()
        })
        .collect();
    for c in db.iter() {
        if parse_id(&c.id).is_none_or(|k| k.isa != isa) {
            continue;
        }
        for r in &c.records {
            let FaultTarget::Gpr { reg, .. } = r.fault.target else {
                continue;
            };
            let slot = &mut out[reg as usize % n];
            slot.hits += 1;
            match r.outcome {
                Outcome::Vanished | Outcome::Ona => slot.masked += 1,
                Outcome::Ut => slot.ut += 1,
                Outcome::Hang => slot.hang += 1,
                // OMM counts as a hit but neither masked nor a crash;
                // harness anomalies are not guest behaviour at all.
                Outcome::Omm | Outcome::Anomaly => {}
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fracas_inject::{
        CampaignResult, Fault, GoldenSummary, InjectionRecord, ProfileStats, Tally,
    };

    fn record(reg: u32, outcome: Outcome) -> InjectionRecord {
        InjectionRecord {
            index: 0,
            fault: Fault {
                target: FaultTarget::Gpr {
                    core: 0,
                    reg,
                    bit: 0,
                },
                cycle: 0,
                width: 1,
            },
            outcome,
            cycles: 1,
            instructions: 1,
            rep: None,
        }
    }

    #[test]
    fn aggregates_by_register() {
        let result = CampaignResult {
            id: "is-ser-1-sira32".into(),
            faults: 4,
            seed: 0,
            golden: GoldenSummary {
                cycles: 1,
                instructions: 1,
                per_core_instructions: vec![1],
            },
            space_bits: 0,
            profile: ProfileStats {
                instructions: 1,
                cycles: 1,
                branches: 0,
                calls: 0,
                loads: 0,
                stores: 0,
                fp_ops: 0,
                svcs: 0,
                idle_cycles: 0,
                kernel_cycles: 0,
                branch_ratio: 0.0,
                mem_ratio: 0.0,
                rd_wr_ratio: 0.0,
                imbalance: 0.0,
                api_cycle_fraction: 0.0,
                softfloat_cycle_fraction: 0.0,
                power_transitions: 0,
                top_functions: Vec::new(),
            },
            tally: Tally::default(),
            records: vec![
                record(15, Outcome::Ut),
                record(15, Outcome::Hang),
                record(4, Outcome::Vanished),
                record(4, Outcome::Ona),
            ],
            pruned: 0,
            audit: None,
            classes: None,
        };
        let db = Database::from_campaigns(vec![result]);
        let crit = register_criticality(&db, IsaKind::Sira32);
        assert_eq!(crit.len(), 16);
        assert_eq!(crit[15].hits, 2);
        assert!(
            (crit[15].crash_rate() - 1.0).abs() < 1e-12,
            "PC is critical"
        );
        assert_eq!(crit[4].hits, 2);
        assert_eq!(crit[4].crash_rate(), 0.0);
        // Nothing bleeds into the other ISA.
        let crit64 = register_criticality(&db, IsaKind::Sira64);
        assert!(crit64.iter().all(|c| c.hits == 0));
    }
}
