//! Class-collapse mining: weighted outcome tallies and aggregate
//! collapse accounting over class-pruned campaign results.
//!
//! A `prune_classes` campaign executes one representative per
//! equivalence class and synthesizes the member records, marking each
//! member with its representative index at run time (the marker is not
//! serialized — the database itself is byte-identical to a full
//! campaign). The miners here honor those markers: outcome proportions,
//! masking rates and Wilson half-widths are computed from a **weighted**
//! tally in which each representative stands for its whole class, so
//! every statistic matches what the full campaign would report — by the
//! exactness argument in `fracas_analyze::intervals`, *exactly*, not
//! approximately.

use fracas_inject::{weighted_tally, CampaignResult, ClassStats, Outcome, Tally};

/// The class-weighted tally of one campaign: identical to
/// `result.tally` (class synthesis is exact), but recomputed from the
/// records so in-memory member markers are honored even on a record
/// subset (e.g. an early-stopped prefix).
#[must_use]
pub fn weighted_outcome_tally(result: &CampaignResult) -> Tally {
    weighted_tally(&result.records)
}

/// Wilson half-width of one outcome proportion under class weighting —
/// the early-stop/confidence statistic over the weighted counts.
#[must_use]
pub fn weighted_wilson_half_width(result: &CampaignResult, outcome: Outcome, z: f64) -> f64 {
    weighted_outcome_tally(result).wilson_half_width(outcome, z)
}

/// Aggregate collapse accounting across many class-pruned campaigns
/// (the EXPERIMENTS.md "class-collapse factor" table's bottom row).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CollapseSummary {
    /// Campaigns that carried class statistics.
    pub campaigns: usize,
    /// Summed per-campaign class statistics.
    pub stats: ClassStats,
}

impl CollapseSummary {
    /// Folds one campaign's class statistics into the aggregate (the
    /// single accumulation point shared by [`collapse_summary`] and the
    /// stats binaries, so nothing hand-sums the fields and drifts when
    /// one is added).
    pub fn add(&mut self, stats: &ClassStats) {
        self.campaigns += 1;
        self.stats.faults += stats.faults;
        self.stats.decided += stats.decided;
        self.stats.live_classes += stats.live_classes;
        self.stats.members += stats.members;
        self.stats.singletons += stats.singletons;
        self.stats.unmodeled.merge(&stats.unmodeled);
    }

    /// Executed share of all sampled faults, in `[0, 1]`.
    #[must_use]
    pub fn executed_fraction(&self) -> f64 {
        self.stats.executed_fraction()
    }

    /// Statically decided share of all sampled faults, in `[0, 1]` (0
    /// for an empty summary) — the text-fault "decidability" headline.
    #[must_use]
    pub fn decided_fraction(&self) -> f64 {
        if self.stats.faults == 0 {
            0.0
        } else {
            f64::from(self.stats.decided) / f64::from(self.stats.faults)
        }
    }

    /// Faults represented per execution.
    #[must_use]
    pub fn collapse_factor(&self) -> f64 {
        self.stats.collapse_factor()
    }
}

/// Sums the class statistics of every result that carries them (i.e.
/// ran with `prune_classes`); `campaigns` counts only those.
#[must_use]
pub fn collapse_summary<'a, I>(results: I) -> CollapseSummary
where
    I: IntoIterator<Item = &'a CampaignResult>,
{
    let mut out = CollapseSummary::default();
    for stats in results.into_iter().filter_map(|r| r.classes) {
        out.add(&stats);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fracas_inject::{run_campaign, CampaignConfig, Workload};
    use fracas_isa::IsaKind;
    use fracas_npb::{App, Model, Scenario};

    fn classed_result() -> CampaignResult {
        let scenario = Scenario::new(App::Ep, Model::Serial, 1, IsaKind::Sira64).expect("scenario");
        let w = Workload::from_scenario(&scenario).expect("build");
        run_campaign(
            &w,
            &CampaignConfig {
                faults: 40,
                prune_classes: true,
                ..CampaignConfig::default()
            },
        )
    }

    #[test]
    fn weighted_tally_and_wilson_match_the_plain_campaign_statistics() {
        let result = classed_result();
        // Exactness: the weighted view recomputed from rep markers is
        // the campaign's own (full-fidelity) tally, so every derived
        // statistic — proportions, masking, Wilson widths — agrees.
        let weighted = weighted_outcome_tally(&result);
        assert_eq!(weighted, result.tally);
        for outcome in Outcome::ALL_WITH_ANOMALY {
            assert_eq!(
                weighted_wilson_half_width(&result, outcome, 1.96),
                result.tally.wilson_half_width(outcome, 1.96)
            );
        }
    }

    #[test]
    fn collapse_summary_sums_class_stats_and_skips_unclassed_results() {
        let classed = classed_result();
        let scenario = Scenario::new(App::Ep, Model::Serial, 1, IsaKind::Sira64).expect("scenario");
        let w = Workload::from_scenario(&scenario).expect("build");
        let plain = run_campaign(
            &w,
            &CampaignConfig {
                faults: 10,
                ..CampaignConfig::default()
            },
        );
        let one = collapse_summary([&classed, &plain]);
        assert_eq!(one.campaigns, 1);
        assert_eq!(one.stats, classed.classes.expect("classed"));
        let two = collapse_summary([&classed, &classed, &plain]);
        assert_eq!(two.campaigns, 2);
        assert_eq!(two.stats.faults, 80);
        assert_eq!(two.stats.executed_fraction(), one.stats.executed_fraction());
        assert!(two.collapse_factor() >= 1.0);
        assert_eq!(two.decided_fraction(), one.decided_fraction());
        // The incremental fold is the same accumulation.
        let mut manual = CollapseSummary::default();
        manual.add(&classed.classes.expect("classed"));
        manual.add(&classed.classes.expect("classed"));
        assert_eq!(manual, two);
        assert_eq!(CollapseSummary::default().decided_fraction(), 0.0);
    }

    #[test]
    fn add_keeps_every_unmodeled_bucket() {
        // Regression: the fold must carry the uncore buckets (cache,
        // kernelctl, skip), not just the original three — a hand-summed
        // field list silently dropped new buckets once.
        use fracas_inject::{ClassStats, Unmodeled, UnmodeledCounts};
        let mut unmodeled = UnmodeledCounts::default();
        for reason in Unmodeled::ALL {
            unmodeled.record(reason);
        }
        let buckets = Unmodeled::ALL.len() as u32;
        let stats = ClassStats {
            faults: buckets,
            singletons: buckets,
            unmodeled,
            ..ClassStats::default()
        };
        let mut summary = CollapseSummary::default();
        summary.add(&stats);
        summary.add(&stats);
        for reason in Unmodeled::ALL {
            assert_eq!(
                summary.stats.unmodeled.count(reason),
                2,
                "{}",
                reason.name()
            );
        }
        assert_eq!(summary.stats.unmodeled.total(), 2 * buckets);
    }
}
