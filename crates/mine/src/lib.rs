//! # fracas-mine — the cross-layer data-mining engine
//!
//! The reproduction of the paper's §3.4 tool: a statistics engine that
//! joins fault-injection outcome databases ([`fracas_inject::CampaignResult`])
//! with the golden-run software/µarch profiles and mines the
//! relationships reported in §4:
//!
//! * per-scenario outcome-rate tables (Figures 2a/2b, 3a/3b),
//! * the MPI-vs-OpenMP per-class **mismatch** (Figures 2c/3c),
//! * branch-composition statistics per macro scenario (§4.1.3),
//! * the normalized **F*B index** (function calls × branches) against
//!   Hang incidence (Table 2),
//! * memory-transaction shares and `RD/WR` ratios against UT (Tables 3–4),
//! * masking-rate comparisons over every MPI/OMP pair, workload balance
//!   and vulnerability windows (§4.2.2),
//! * Pearson correlation over arbitrary metric pairs,
//! * the Table 1 workload summary and the Figure 1 trend data,
//! * class-weighted tallies and collapse accounting for
//!   `prune_classes` campaigns ([`weighted_outcome_tally`],
//!   [`collapse_summary`]).

mod collapse;
mod correlate;
mod db;
mod registers;
mod report;
mod stats;
mod trends;

pub use collapse::{
    collapse_summary, weighted_outcome_tally, weighted_wilson_half_width, CollapseSummary,
};
pub use correlate::{correlation_matrix, strongest, Correlation, METRICS, RATES};
pub use db::{parse_id, Database, Key};
pub use registers::{register_criticality, RegisterCriticality};
pub use report::{
    composition_stats, hang_index_table, labeled_outcome_table, masking_comparison, mem_table,
    mismatch_rows, mismatch_table, outcome_table, workload_summary, CompositionStat, HangIndexRow,
    MaskingSummary, MemRow, MismatchRow, WorkloadSummary,
};
pub use stats::{mean, pearson, std_dev};
pub use trends::{trend_rows, TrendPoint};
