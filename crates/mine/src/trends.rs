//! Figure 1's historical processor-evolution dataset.
//!
//! The paper's motivational figure plots transistor counts, core counts
//! and process nodes of commercial processors from 1970 to 2018. The
//! same public datapoints are embedded here so the `fig1_trends` bench
//! target can regenerate the three series.

/// One processor datapoint.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrendPoint {
    /// Introduction year.
    pub year: u32,
    /// Marketing name.
    pub name: &'static str,
    /// Transistor count.
    pub transistors: u64,
    /// Core count.
    pub cores: u32,
    /// Process node in nanometres.
    pub node_nm: f64,
}

/// The embedded dataset, in chronological order.
pub fn trend_rows() -> &'static [TrendPoint] {
    &[
        TrendPoint {
            year: 1971,
            name: "Intel 4004",
            transistors: 2_300,
            cores: 1,
            node_nm: 10_000.0,
        },
        TrendPoint {
            year: 1974,
            name: "Intel 8080",
            transistors: 4_500,
            cores: 1,
            node_nm: 6_000.0,
        },
        TrendPoint {
            year: 1978,
            name: "Intel 8086",
            transistors: 29_000,
            cores: 1,
            node_nm: 3_000.0,
        },
        TrendPoint {
            year: 1982,
            name: "Intel 80286",
            transistors: 134_000,
            cores: 1,
            node_nm: 1_500.0,
        },
        TrendPoint {
            year: 1989,
            name: "Intel 80486",
            transistors: 1_180_000,
            cores: 1,
            node_nm: 1_000.0,
        },
        TrendPoint {
            year: 1993,
            name: "Pentium",
            transistors: 3_100_000,
            cores: 1,
            node_nm: 800.0,
        },
        TrendPoint {
            year: 1999,
            name: "AMD K7",
            transistors: 22_000_000,
            cores: 1,
            node_nm: 250.0,
        },
        TrendPoint {
            year: 2005,
            name: "Athlon 64 X2",
            transistors: 233_000_000,
            cores: 2,
            node_nm: 90.0,
        },
        TrendPoint {
            year: 2006,
            name: "Core 2 Quad",
            transistors: 582_000_000,
            cores: 4,
            node_nm: 65.0,
        },
        TrendPoint {
            year: 2007,
            name: "POWER6",
            transistors: 790_000_000,
            cores: 2,
            node_nm: 65.0,
        },
        TrendPoint {
            year: 2010,
            name: "SPARC T3",
            transistors: 1_000_000_000,
            cores: 16,
            node_nm: 40.0,
        },
        TrendPoint {
            year: 2012,
            name: "Ivy Bridge (1st FinFET gen)",
            transistors: 1_400_000_000,
            cores: 4,
            node_nm: 22.0,
        },
        TrendPoint {
            year: 2014,
            name: "Broadwell (2nd FinFET gen)",
            transistors: 1_900_000_000,
            cores: 4,
            node_nm: 14.0,
        },
        TrendPoint {
            year: 2015,
            name: "SPARC M7",
            transistors: 10_000_000_000,
            cores: 32,
            node_nm: 20.0,
        },
        TrendPoint {
            year: 2017,
            name: "Ryzen",
            transistors: 4_800_000_000,
            cores: 8,
            node_nm: 14.0,
        },
        TrendPoint {
            year: 2017,
            name: "Xeon E7-8894",
            transistors: 7_200_000_000,
            cores: 24,
            node_nm: 14.0,
        },
        TrendPoint {
            year: 2018,
            name: "Xeon Platinum (48-core boards)",
            transistors: 8_000_000_000,
            cores: 28,
            node_nm: 14.0,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_is_chronological_and_growing() {
        let rows = trend_rows();
        assert!(rows.len() >= 15);
        for w in rows.windows(2) {
            assert!(w[0].year <= w[1].year);
        }
        // Transistors grow by orders of magnitude over the range.
        assert!(rows.last().unwrap().transistors > rows[0].transistors * 1_000_000);
        // Node shrinks from microns to nanometres.
        assert!(rows[0].node_nm > 1_000.0);
        assert!(rows.last().unwrap().node_nm < 20.0);
    }
}
