//! The mining reports behind every table and figure of the paper.

use crate::db::{parse_id, Database, Key};
use crate::stats::{mean, std_dev};
use fracas_inject::{Outcome, Tally};
use fracas_isa::IsaKind;
use fracas_npb::{App, Model};
use std::fmt::Write as _;

/// Renders the per-application outcome distribution panel (Figures 2a/2b
/// for SIRA-32, 3a/3b for SIRA-64): one row per scenario group
/// (`SER-1`, `MPI-1`, `MPI-2`, `MPI-4` or the OMP equivalents) with the
/// five class percentages.
pub fn outcome_table(db: &Database, isa: IsaKind, model: Model) -> String {
    let tag = match model {
        Model::Mpi => "MPI",
        Model::Omp => "OMP",
        Model::Serial => "SER",
    };
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<4} {:<6} {:>8} {:>8} {:>8} {:>8} {:>8}   (injected faults %)",
        "App", "Run", "Vanish", "ONA", "OMM", "UT", "Hang"
    );
    for app in App::ALL {
        if !fracas_npb::has_variant(app, model) {
            continue;
        }
        let mut rows: Vec<(String, Key)> = Vec::new();
        if fracas_npb::has_variant(app, Model::Serial) {
            rows.push((
                "SER-1".to_string(),
                Key {
                    app,
                    model: Model::Serial,
                    cores: 1,
                    isa,
                },
            ));
        }
        for cores in [1u32, 2, 4] {
            if fracas_npb::available(app, model, cores) {
                rows.push((
                    format!("{tag}-{cores}"),
                    Key {
                        app,
                        model,
                        cores,
                        isa,
                    },
                ));
            }
        }
        for (label, key) in rows {
            match db.get(key) {
                Some(c) => {
                    let t = &c.tally;
                    let _ = writeln!(
                        out,
                        "{:<4} {:<6} {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>8.2}",
                        app.name(),
                        label,
                        t.pct(Outcome::Vanished),
                        t.pct(Outcome::Ona),
                        t.pct(Outcome::Omm),
                        t.pct(Outcome::Ut),
                        t.pct(Outcome::Hang),
                    );
                }
                None => {
                    let _ = writeln!(out, "{:<4} {:<6} (no campaign data)", app.name(), label);
                }
            }
        }
    }
    out
}

/// Renders a labeled outcome-composition panel from finished tallies —
/// one row per label with the five outcome-class percentages plus the
/// masking rate. Unlike [`outcome_table`] it is not keyed by scenario:
/// callers bucket records however the comparison demands (per fault
/// domain in `stats_uncore`, per ISA, per width...) and hand over the
/// tallies. Labels with an empty tally render as `(no records)` so a
/// domain that sampled nothing stays visible instead of vanishing from
/// the panel.
pub fn labeled_outcome_table(rows: &[(String, Tally)]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<10} {:>6} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}   (injected faults %)",
        "space", "n", "Vanish", "ONA", "OMM", "UT", "Hang", "mask%"
    );
    for (label, tally) in rows {
        if tally.total() == 0 {
            let _ = writeln!(out, "{label:<10} {:>6} (no records)", 0);
            continue;
        }
        let _ = writeln!(
            out,
            "{:<10} {:>6} {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>8.2}",
            label,
            tally.total(),
            tally.pct(Outcome::Vanished),
            tally.pct(Outcome::Ona),
            tally.pct(Outcome::Omm),
            tally.pct(Outcome::Ut),
            tally.pct(Outcome::Hang),
            tally.masking_rate() * 100.0,
        );
    }
    out
}

/// One MPI-vs-OMP mismatch comparison (Figures 2c/3c).
#[derive(Debug, Clone, PartialEq)]
pub struct MismatchRow {
    /// Application.
    pub app: App,
    /// Core count.
    pub cores: u32,
    /// Per-class percentage difference, MPI − OMP, in
    /// [Vanish, ONA, OMM, UT, Hang] order.
    pub delta: [f64; 5],
    /// The paper's mismatch: sum of absolute per-class differences.
    pub mismatch: f64,
}

/// Computes every available MPI-vs-OMP mismatch for one ISA.
pub fn mismatch_rows(db: &Database, isa: IsaKind) -> Vec<MismatchRow> {
    let mut rows = Vec::new();
    for app in App::ALL {
        for cores in [1u32, 2, 4] {
            if !fracas_npb::available(app, Model::Mpi, cores)
                || !fracas_npb::available(app, Model::Omp, cores)
            {
                continue;
            }
            let (Some(m), Some(o)) = (
                db.get(Key {
                    app,
                    model: Model::Mpi,
                    cores,
                    isa,
                }),
                db.get(Key {
                    app,
                    model: Model::Omp,
                    cores,
                    isa,
                }),
            ) else {
                continue;
            };
            let mut delta = [0.0; 5];
            let mut mismatch = 0.0;
            for (i, class) in Outcome::ALL.into_iter().enumerate() {
                delta[i] = m.tally.pct(class) - o.tally.pct(class);
                mismatch += delta[i].abs();
            }
            rows.push(MismatchRow {
                app,
                cores,
                delta,
                mismatch,
            });
        }
    }
    rows
}

/// Renders the mismatch panel as text.
pub fn mismatch_table(db: &Database, isa: IsaKind) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<4} {:>5} {:>9} {:>9} {:>9} {:>9} {:>9} {:>10}   (MPI - OMP, %)",
        "App", "Cores", "Vanish", "ONA", "OMM", "UT", "Hang", "Mismatch"
    );
    for row in mismatch_rows(db, isa) {
        let _ = writeln!(
            out,
            "{:<4} {:>5} {:>9.2} {:>9.2} {:>9.2} {:>9.2} {:>9.2} {:>10.2}",
            row.app.name(),
            row.cores,
            row.delta[0],
            row.delta[1],
            row.delta[2],
            row.delta[3],
            row.delta[4],
            row.mismatch,
        );
    }
    out
}

/// One row of Table 2: Hang incidence against the normalized
/// function-calls × branches index.
#[derive(Debug, Clone, PartialEq)]
pub struct HangIndexRow {
    /// Scenario group label, e.g. `IS MPI V7`.
    pub group: String,
    /// Core count.
    pub cores: u32,
    /// Hang percentage.
    pub hang_pct: f64,
    /// Executed branch instructions.
    pub branches: u64,
    /// Executed function calls.
    pub calls: u64,
    /// F*B = (calls × branches), normalized to the group's single-core
    /// value.
    pub index_fb: f64,
}

/// Builds Table 2 for one application (the paper uses IS).
pub fn hang_index_table(db: &Database, app: App) -> Vec<HangIndexRow> {
    let mut rows = Vec::new();
    for (model, isa, label) in [
        (Model::Mpi, IsaKind::Sira32, "MPI V7"),
        (Model::Omp, IsaKind::Sira32, "OMP V7"),
        (Model::Mpi, IsaKind::Sira64, "MPI V8"),
        (Model::Omp, IsaKind::Sira64, "OMP V8"),
    ] {
        let single = db
            .get(Key {
                app,
                model,
                cores: 1,
                isa,
            })
            .map(|c| c.profile.calls as f64 * c.profile.branches as f64);
        for cores in [1u32, 2, 4] {
            if !fracas_npb::available(app, model, cores) {
                continue;
            }
            let Some(c) = db.get(Key {
                app,
                model,
                cores,
                isa,
            }) else {
                continue;
            };
            let fb = c.profile.calls as f64 * c.profile.branches as f64;
            let norm = match single {
                Some(s) if s > 0.0 => fb / s,
                _ => 0.0,
            };
            rows.push(HangIndexRow {
                group: format!("{} {label}", app.name()),
                cores,
                hang_pct: c.tally.pct(Outcome::Hang),
                branches: c.profile.branches,
                calls: c.profile.calls,
                index_fb: norm,
            });
        }
    }
    rows
}

/// One row of Tables 3/4: memory-transaction behaviour against the
/// outcome classes.
#[derive(Debug, Clone, PartialEq)]
pub struct MemRow {
    /// Scenario label, e.g. `MG MPIx4`.
    pub label: String,
    /// Vanished + OMM + ONA percentage (the table's first column).
    pub survived_pct: f64,
    /// UT percentage.
    pub ut_pct: f64,
    /// Memory instructions as % of executed instructions.
    pub mem_pct: f64,
    /// Load/store ratio.
    pub rd_wr: f64,
}

/// Builds a Table 3/4-style report for the given scenario keys.
pub fn mem_table(db: &Database, keys: &[Key]) -> Vec<MemRow> {
    keys.iter()
        .filter_map(|&key| {
            let c = db.get(key)?;
            let tag = match key.model {
                Model::Mpi => "MPI",
                Model::Omp => "OMP",
                Model::Serial => "SER",
            };
            Some(MemRow {
                label: format!("{} {tag}x{}", key.app.name(), key.cores),
                survived_pct: c.tally.pct(Outcome::Vanished)
                    + c.tally.pct(Outcome::Omm)
                    + c.tally.pct(Outcome::Ona),
                ut_pct: c.tally.pct(Outcome::Ut),
                mem_pct: c.profile.mem_ratio * 100.0,
                rd_wr: c.profile.rd_wr_ratio,
            })
        })
        .collect()
}

/// Branch-composition statistics for one macro scenario (§4.1.3).
#[derive(Debug, Clone, PartialEq)]
pub struct CompositionStat {
    /// Group label (`MPI V7`, `OMP V7`, `MPI V8`, `OMP V8`).
    pub group: &'static str,
    /// Mean branch share of executed instructions, in percent.
    pub mean_branch_pct: f64,
    /// Standard deviation of the branch share, in percent.
    pub sigma: f64,
    /// Scenarios in the group.
    pub scenarios: usize,
}

/// Computes the four macro-scenario branch compositions.
pub fn composition_stats(db: &Database) -> Vec<CompositionStat> {
    [
        (Model::Mpi, IsaKind::Sira32, "MPI V7"),
        (Model::Omp, IsaKind::Sira32, "OMP V7"),
        (Model::Mpi, IsaKind::Sira64, "MPI V8"),
        (Model::Omp, IsaKind::Sira64, "OMP V8"),
    ]
    .into_iter()
    .map(|(model, isa, group)| {
        let ratios: Vec<f64> = db
            .iter()
            .filter(|c| parse_id(&c.id).is_some_and(|k| k.model == model && k.isa == isa))
            .map(|c| c.profile.branch_ratio * 100.0)
            .collect();
        CompositionStat {
            group,
            mean_branch_pct: mean(&ratios),
            sigma: std_dev(&ratios),
            scenarios: ratios.len(),
        }
    })
    .collect()
}

/// The §4.2.2 masking-rate comparison over every MPI/OMP pair.
#[derive(Debug, Clone, PartialEq)]
pub struct MaskingSummary {
    /// Comparable (app, cores, isa) pairs found.
    pub pairs: usize,
    /// Pairs where MPI has the higher masking rate.
    pub mpi_wins: usize,
    /// Mean per-core instruction imbalance of the MPI scenarios.
    pub mpi_imbalance: f64,
    /// Mean per-core instruction imbalance of the OMP scenarios.
    pub omp_imbalance: f64,
    /// Mean OMP/MPI execution-cycle ratio (the paper reports OMP running
    /// ~16 % shorter).
    pub omp_cycle_ratio: f64,
    /// Largest parallelization-API vulnerability window observed
    /// (fraction of cycles; the paper bounds it at 23 %).
    pub max_api_window: f64,
}

/// Computes the masking comparison across both ISAs.
pub fn masking_comparison(db: &Database) -> MaskingSummary {
    let mut pairs = 0;
    let mut mpi_wins = 0;
    let mut mpi_imb = Vec::new();
    let mut omp_imb = Vec::new();
    let mut cycle_ratio = Vec::new();
    let mut max_api: f64 = 0.0;
    for isa in IsaKind::ALL {
        for app in App::ALL {
            for cores in [1u32, 2, 4] {
                if !fracas_npb::available(app, Model::Mpi, cores)
                    || !fracas_npb::available(app, Model::Omp, cores)
                {
                    continue;
                }
                let (Some(m), Some(o)) = (
                    db.get(Key {
                        app,
                        model: Model::Mpi,
                        cores,
                        isa,
                    }),
                    db.get(Key {
                        app,
                        model: Model::Omp,
                        cores,
                        isa,
                    }),
                ) else {
                    continue;
                };
                pairs += 1;
                if m.tally.masking_rate() > o.tally.masking_rate() {
                    mpi_wins += 1;
                }
                if cores > 1 {
                    mpi_imb.push(m.profile.imbalance);
                    omp_imb.push(o.profile.imbalance);
                }
                if m.golden.cycles > 0 {
                    cycle_ratio.push(o.golden.cycles as f64 / m.golden.cycles as f64);
                }
                max_api = max_api
                    .max(m.profile.api_cycle_fraction)
                    .max(o.profile.api_cycle_fraction);
            }
        }
    }
    MaskingSummary {
        pairs,
        mpi_wins,
        mpi_imbalance: mean(&mpi_imb),
        omp_imbalance: mean(&omp_imb),
        omp_cycle_ratio: mean(&cycle_ratio),
        max_api_window: max_api,
    }
}

/// The Table 1 workload summary for one ISA.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSummary {
    /// ISA.
    pub isa: IsaKind,
    /// (min, avg, max) guest-time seconds of a single faultless run
    /// (guest cycles at the 1 GHz model clock).
    pub sim_seconds: (f64, f64, f64),
    /// (min, avg, max) campaign hours (single-run time × injections).
    pub campaign_hours: (f64, f64, f64),
    /// (min, avg, max) executed instructions.
    pub instructions: (u64, u64, u64),
    /// Total campaign hours over all scenarios.
    pub total_campaign_hours: f64,
    /// Scenarios summarised.
    pub scenarios: usize,
}

/// Builds the Table 1 summary for one ISA from all its campaigns.
pub fn workload_summary(db: &Database, isa: IsaKind) -> WorkloadSummary {
    let mut secs = Vec::new();
    let mut hours = Vec::new();
    let mut instrs = Vec::new();
    for c in db.iter() {
        let Some(key) = parse_id(&c.id) else { continue };
        if key.isa != isa {
            continue;
        }
        let s = c.golden.cycles as f64 / 1.0e9;
        secs.push(s);
        hours.push(s * c.faults as f64 / 3600.0);
        instrs.push(c.golden.instructions);
    }
    let minmax = |xs: &[f64]| -> (f64, f64, f64) {
        if xs.is_empty() {
            return (0.0, 0.0, 0.0);
        }
        (
            xs.iter().copied().fold(f64::INFINITY, f64::min),
            mean(xs),
            xs.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        )
    };
    let imm = if instrs.is_empty() {
        (0, 0, 0)
    } else {
        (
            *instrs.iter().min().expect("non-empty"),
            (instrs.iter().sum::<u64>() / instrs.len() as u64),
            *instrs.iter().max().expect("non-empty"),
        )
    };
    WorkloadSummary {
        isa,
        sim_seconds: minmax(&secs),
        campaign_hours: minmax(&hours),
        instructions: imm,
        total_campaign_hours: hours.iter().sum(),
        scenarios: secs.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fracas_inject::{CampaignResult, GoldenSummary, ProfileStats, Tally};

    fn fake(id: &str, tally: Tally, branches: u64, calls: u64, mem_ratio: f64) -> CampaignResult {
        CampaignResult {
            id: id.to_string(),
            faults: tally.total() as usize,
            seed: 0,
            golden: GoldenSummary {
                cycles: 1_000_000,
                instructions: 500_000,
                per_core_instructions: vec![500_000],
            },
            space_bits: 0,
            profile: ProfileStats {
                instructions: 500_000,
                cycles: 1_000_000,
                branches,
                calls,
                loads: 60_000,
                stores: 30_000,
                fp_ops: 0,
                svcs: 10,
                idle_cycles: 0,
                kernel_cycles: 100,
                branch_ratio: branches as f64 / 500_000.0,
                mem_ratio,
                rd_wr_ratio: 2.0,
                imbalance: 0.05,
                api_cycle_fraction: 0.1,
                softfloat_cycle_fraction: 0.0,
                power_transitions: 3,
                top_functions: Vec::new(),
            },
            tally,
            records: Vec::new(),
            pruned: 0,
            audit: None,
            classes: None,
        }
    }

    fn tally(v: u64, ona: u64, omm: u64, ut: u64, hang: u64) -> Tally {
        Tally {
            vanished: v,
            ona,
            omm,
            ut,
            hang,
            anomaly: 0,
        }
    }

    #[test]
    fn mismatch_computes_sum_of_absolute_differences() {
        let db = Database::from_campaigns(vec![
            fake("is-mpi-2-sira64", tally(50, 10, 10, 20, 10), 100, 10, 0.2),
            fake("is-omp-2-sira64", tally(60, 10, 10, 15, 5), 100, 10, 0.2),
        ]);
        let rows = mismatch_rows(&db, IsaKind::Sira64);
        assert_eq!(rows.len(), 1);
        let r = &rows[0];
        assert_eq!(r.app, App::Is);
        // Deltas: -10, 0, 0, +5, +5 -> mismatch 20.
        assert!((r.mismatch - 20.0).abs() < 1e-9, "{r:?}");
        assert!((r.delta[0] + 10.0).abs() < 1e-9);
        assert!((r.delta[3] - 5.0).abs() < 1e-9);
    }

    #[test]
    fn hang_index_normalizes_to_single_core() {
        let db = Database::from_campaigns(vec![
            fake("is-mpi-1-sira64", tally(99, 0, 0, 0, 1), 1000, 100, 0.2),
            fake("is-mpi-4-sira64", tally(96, 0, 0, 0, 4), 2000, 150, 0.2),
        ]);
        let rows = hang_index_table(&db, App::Is);
        let one = rows.iter().find(|r| r.cores == 1).unwrap();
        let four = rows.iter().find(|r| r.cores == 4).unwrap();
        assert!((one.index_fb - 1.0).abs() < 1e-9);
        assert!((four.index_fb - 3.0).abs() < 1e-9); // (2000*150)/(1000*100)
        assert!(four.hang_pct > one.hang_pct);
    }

    #[test]
    fn mem_table_reports_shares() {
        let db = Database::from_campaigns(vec![fake(
            "mg-mpi-4-sira32",
            tally(60, 5, 5, 30, 0),
            100,
            10,
            0.225,
        )]);
        let rows = mem_table(
            &db,
            &[Key {
                app: App::Mg,
                model: Model::Mpi,
                cores: 4,
                isa: IsaKind::Sira32,
            }],
        );
        assert_eq!(rows.len(), 1);
        assert!((rows[0].survived_pct - 70.0).abs() < 1e-9);
        assert!((rows[0].ut_pct - 30.0).abs() < 1e-9);
        assert!((rows[0].mem_pct - 22.5).abs() < 1e-9);
        assert_eq!(rows[0].label, "MG MPIx4");
    }

    #[test]
    fn composition_groups_by_model_and_isa() {
        let db = Database::from_campaigns(vec![
            fake("is-mpi-1-sira32", tally(1, 0, 0, 0, 0), 96_200, 10, 0.2),
            fake("cg-mpi-2-sira32", tally(1, 0, 0, 0, 0), 96_200, 10, 0.2),
            fake("is-omp-1-sira32", tally(1, 0, 0, 0, 0), 70_400, 10, 0.2),
        ]);
        let stats = composition_stats(&db);
        let mpi_v7 = stats.iter().find(|s| s.group == "MPI V7").unwrap();
        assert_eq!(mpi_v7.scenarios, 2);
        assert!((mpi_v7.mean_branch_pct - 19.24).abs() < 0.01);
        assert!(mpi_v7.sigma < 1e-9);
        let omp_v7 = stats.iter().find(|s| s.group == "OMP V7").unwrap();
        assert!((omp_v7.mean_branch_pct - 14.08).abs() < 0.01);
    }

    #[test]
    fn masking_comparison_counts_wins() {
        let db = Database::from_campaigns(vec![
            fake("is-mpi-2-sira64", tally(70, 10, 5, 10, 5), 100, 10, 0.2),
            fake("is-omp-2-sira64", tally(60, 10, 10, 15, 5), 100, 10, 0.2),
        ]);
        let summary = masking_comparison(&db);
        assert_eq!(summary.pairs, 1);
        assert_eq!(summary.mpi_wins, 1);
        assert!(summary.max_api_window > 0.0);
    }

    #[test]
    fn workload_summary_aggregates() {
        let db = Database::from_campaigns(vec![
            fake("is-ser-1-sira64", tally(10, 0, 0, 0, 0), 100, 10, 0.2),
            fake("cg-ser-1-sira64", tally(10, 0, 0, 0, 0), 100, 10, 0.2),
        ]);
        let s = workload_summary(&db, IsaKind::Sira64);
        assert_eq!(s.scenarios, 2);
        assert_eq!(s.instructions.1, 500_000);
        assert!(s.total_campaign_hours > 0.0);
        let empty = workload_summary(&db, IsaKind::Sira32);
        assert_eq!(empty.scenarios, 0);
    }

    #[test]
    fn outcome_table_renders_known_rows() {
        let db = Database::from_campaigns(vec![
            fake("is-ser-1-sira64", tally(80, 5, 5, 8, 2), 100, 10, 0.2),
            fake("is-mpi-2-sira64", tally(70, 10, 5, 10, 5), 100, 10, 0.2),
        ]);
        let table = outcome_table(&db, IsaKind::Sira64, Model::Mpi);
        assert!(table.contains("SER-1"));
        assert!(table.contains("MPI-2"));
        assert!(table.contains("80.00"));
        assert!(table.contains("no campaign data"), "missing rows flagged");
    }
}
