//! The merged campaign database and scenario-id parsing.

use fracas_inject::CampaignResult;
use fracas_isa::IsaKind;
use fracas_npb::{App, Model};

/// A parsed scenario identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Key {
    /// Application.
    pub app: App,
    /// Programming model.
    pub model: Model,
    /// Core / rank / thread count.
    pub cores: u32,
    /// Target ISA.
    pub isa: IsaKind,
}

/// Parses a scenario id of the form `app-model-cores-isa`
/// (e.g. `ft-mpi-4-sira64`).
pub fn parse_id(id: &str) -> Option<Key> {
    let mut parts = id.split('-');
    let app = match parts.next()? {
        "bt" => App::Bt,
        "cg" => App::Cg,
        "dc" => App::Dc,
        "dt" => App::Dt,
        "ep" => App::Ep,
        "ft" => App::Ft,
        "is" => App::Is,
        "lu" => App::Lu,
        "mg" => App::Mg,
        "sp" => App::Sp,
        "ua" => App::Ua,
        _ => return None,
    };
    let model = match parts.next()? {
        "ser" => Model::Serial,
        "omp" => Model::Omp,
        "mpi" => Model::Mpi,
        _ => return None,
    };
    let cores: u32 = parts.next()?.parse().ok()?;
    let isa = match parts.next()? {
        "sira32" => IsaKind::Sira32,
        "sira64" => IsaKind::Sira64,
        _ => return None,
    };
    if parts.next().is_some() {
        return None;
    }
    Some(Key {
        app,
        model,
        cores,
        isa,
    })
}

/// The phase-four merged database: one [`CampaignResult`] per scenario.
#[derive(Debug, Clone, Default)]
pub struct Database {
    campaigns: Vec<CampaignResult>,
}

impl Database {
    /// An empty database.
    pub fn new() -> Database {
        Database::default()
    }

    /// Builds a database from campaign results.
    pub fn from_campaigns(campaigns: Vec<CampaignResult>) -> Database {
        Database { campaigns }
    }

    /// Adds one campaign.
    pub fn push(&mut self, result: CampaignResult) {
        self.campaigns.push(result);
    }

    /// All campaigns.
    pub fn iter(&self) -> impl Iterator<Item = &CampaignResult> {
        self.campaigns.iter()
    }

    /// Number of campaigns.
    pub fn len(&self) -> usize {
        self.campaigns.len()
    }

    /// True when no campaigns are loaded.
    pub fn is_empty(&self) -> bool {
        self.campaigns.is_empty()
    }

    /// Looks a campaign up by scenario identity.
    pub fn get(&self, key: Key) -> Option<&CampaignResult> {
        self.campaigns.iter().find(|c| parse_id(&c.id) == Some(key))
    }

    /// Serialises the database as JSON lines (one campaign per line).
    pub fn to_json_lines(&self) -> String {
        let mut s = String::new();
        for c in &self.campaigns {
            s.push_str(&c.to_json());
            s.push('\n');
        }
        s
    }

    /// Parses a JSON-lines database.
    ///
    /// # Errors
    ///
    /// Returns the first serde error for a malformed line.
    pub fn from_json_lines(text: &str) -> Result<Database, serde_json::Error> {
        let mut db = Database::new();
        for line in text.lines().filter(|l| !l.trim().is_empty()) {
            db.push(CampaignResult::from_json(line)?);
        }
        Ok(db)
    }
}

impl FromIterator<CampaignResult> for Database {
    fn from_iter<I: IntoIterator<Item = CampaignResult>>(iter: I) -> Database {
        Database {
            campaigns: iter.into_iter().collect(),
        }
    }
}

impl Extend<CampaignResult> for Database {
    fn extend<I: IntoIterator<Item = CampaignResult>>(&mut self, iter: I) {
        self.campaigns.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_valid_ids() {
        let k = parse_id("ft-mpi-4-sira64").unwrap();
        assert_eq!(k.app, App::Ft);
        assert_eq!(k.model, Model::Mpi);
        assert_eq!(k.cores, 4);
        assert_eq!(k.isa, IsaKind::Sira64);
        let k = parse_id("is-ser-1-sira32").unwrap();
        assert_eq!(k.app, App::Is);
        assert_eq!(k.model, Model::Serial);
    }

    #[test]
    fn rejects_malformed_ids() {
        assert!(parse_id("nope-mpi-4-sira64").is_none());
        assert!(parse_id("ft-xxx-4-sira64").is_none());
        assert!(parse_id("ft-mpi-x-sira64").is_none());
        assert!(parse_id("ft-mpi-4-arm").is_none());
        assert!(parse_id("ft-mpi-4-sira64-extra").is_none());
        assert!(parse_id("").is_none());
    }

    #[test]
    fn scenario_ids_all_parse() {
        for s in fracas_npb::Scenario::all() {
            let k = parse_id(&s.id()).unwrap_or_else(|| panic!("{}", s.id()));
            assert_eq!(k.app, s.app);
            assert_eq!(k.model, s.model);
            assert_eq!(k.cores, s.cores);
            assert_eq!(k.isa, s.isa);
        }
    }
}
