//! The exploratory correlation engine: Pearson coefficients between
//! every profile metric and every outcome rate, across all campaigns —
//! the "mined to uncover variable relationships" step of §3.4.

use crate::db::Database;
use crate::stats::pearson;
use fracas_inject::{CampaignResult, Outcome};

/// The profile metrics the correlation sweep exposes.
pub const METRICS: [&str; 10] = [
    "branch_ratio",
    "mem_ratio",
    "rd_wr_ratio",
    "imbalance",
    "api_cycle_fraction",
    "softfloat_cycle_fraction",
    "calls_x_branches",
    "kernel_cycle_share",
    "idle_cycle_share",
    "power_transitions",
];

/// The outcome rates correlated against.
pub const RATES: [&str; 6] = ["Vanish", "ONA", "OMM", "UT", "Hang", "Masked"];

fn metric_value(c: &CampaignResult, metric: &str) -> f64 {
    let p = &c.profile;
    let core_cycles = (p.cycles as f64).max(1.0);
    match metric {
        "branch_ratio" => p.branch_ratio,
        "mem_ratio" => p.mem_ratio,
        "rd_wr_ratio" => p.rd_wr_ratio,
        "imbalance" => p.imbalance,
        "api_cycle_fraction" => p.api_cycle_fraction,
        "softfloat_cycle_fraction" => p.softfloat_cycle_fraction,
        "calls_x_branches" => (p.calls as f64).ln_1p() + (p.branches as f64).ln_1p(),
        "kernel_cycle_share" => p.kernel_cycles as f64 / core_cycles,
        "idle_cycle_share" => p.idle_cycles as f64 / core_cycles,
        "power_transitions" => (p.power_transitions as f64).ln_1p(),
        _ => 0.0,
    }
}

fn rate_value(c: &CampaignResult, rate: &str) -> f64 {
    match rate {
        "Vanish" => c.tally.pct(Outcome::Vanished),
        "ONA" => c.tally.pct(Outcome::Ona),
        "OMM" => c.tally.pct(Outcome::Omm),
        "UT" => c.tally.pct(Outcome::Ut),
        "Hang" => c.tally.pct(Outcome::Hang),
        "Masked" => c.tally.masking_rate() * 100.0,
        _ => 0.0,
    }
}

/// One cell of the correlation sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct Correlation {
    /// The profile metric (x).
    pub metric: &'static str,
    /// The outcome rate (y).
    pub rate: &'static str,
    /// Pearson coefficient over all campaigns that passed `filter`.
    pub r: f64,
    /// Sample count.
    pub n: usize,
}

/// Computes the full metric × rate correlation matrix over campaigns
/// selected by `filter` (e.g. one ISA, one model, or everything).
pub fn correlation_matrix(
    db: &Database,
    mut filter: impl FnMut(&CampaignResult) -> bool,
) -> Vec<Correlation> {
    let selected: Vec<&CampaignResult> = db.iter().filter(|c| filter(c)).collect();
    let mut out = Vec::with_capacity(METRICS.len() * RATES.len());
    for metric in METRICS {
        let xs: Vec<f64> = selected.iter().map(|c| metric_value(c, metric)).collect();
        for rate in RATES {
            let ys: Vec<f64> = selected.iter().map(|c| rate_value(c, rate)).collect();
            out.push(Correlation {
                metric,
                rate,
                r: pearson(&xs, &ys),
                n: selected.len(),
            });
        }
    }
    out
}

/// The strongest correlations (by |r|), most interesting first.
pub fn strongest(matrix: &[Correlation], top: usize) -> Vec<Correlation> {
    let mut sorted: Vec<Correlation> = matrix.to_vec();
    sorted.sort_by(|a, b| b.r.abs().partial_cmp(&a.r.abs()).expect("finite r"));
    sorted.truncate(top);
    sorted
}

#[cfg(test)]
mod tests {
    use super::*;
    use fracas_inject::{GoldenSummary, ProfileStats, Tally};

    fn fake(id: &str, mem_ratio: f64, ut: u64) -> CampaignResult {
        CampaignResult {
            id: id.to_string(),
            faults: 100,
            seed: 0,
            golden: GoldenSummary {
                cycles: 1000,
                instructions: 500,
                per_core_instructions: vec![500],
            },
            space_bits: 0,
            profile: ProfileStats {
                instructions: 500,
                cycles: 1000,
                branches: 50,
                calls: 5,
                loads: 50,
                stores: 25,
                fp_ops: 0,
                svcs: 2,
                idle_cycles: 0,
                kernel_cycles: 10,
                branch_ratio: 0.1,
                mem_ratio,
                rd_wr_ratio: 2.0,
                imbalance: 0.0,
                api_cycle_fraction: 0.0,
                softfloat_cycle_fraction: 0.0,
                power_transitions: 1,
                top_functions: Vec::new(),
            },
            tally: Tally {
                vanished: 100 - ut,
                ut,
                ..Tally::default()
            },
            records: Vec::new(),
            pruned: 0,
            audit: None,
            classes: None,
        }
    }

    #[test]
    fn mem_share_ut_correlation_is_found() {
        // Construct a clean positive relationship.
        let db = Database::from_campaigns(vec![
            fake("is-ser-1-sira64", 0.10, 10),
            fake("mg-ser-1-sira64", 0.20, 20),
            fake("cg-ser-1-sira64", 0.30, 30),
            fake("lu-ser-1-sira64", 0.40, 40),
        ]);
        let matrix = correlation_matrix(&db, |_| true);
        let cell = matrix
            .iter()
            .find(|c| c.metric == "mem_ratio" && c.rate == "UT")
            .expect("cell exists");
        assert!(cell.r > 0.99, "{cell:?}");
        assert_eq!(cell.n, 4);
        // And the Masked column goes the other way.
        let masked = matrix
            .iter()
            .find(|c| c.metric == "mem_ratio" && c.rate == "Masked")
            .expect("cell exists");
        assert!(masked.r < -0.99, "{masked:?}");
    }

    #[test]
    fn strongest_sorts_by_magnitude() {
        let matrix = vec![
            Correlation {
                metric: "a",
                rate: "x",
                r: 0.2,
                n: 4,
            },
            Correlation {
                metric: "b",
                rate: "y",
                r: -0.9,
                n: 4,
            },
            Correlation {
                metric: "c",
                rate: "z",
                r: 0.5,
                n: 4,
            },
        ];
        let top = strongest(&matrix, 2);
        assert_eq!(top[0].metric, "b");
        assert_eq!(top[1].metric, "c");
    }

    #[test]
    fn filter_subsets_samples() {
        let db = Database::from_campaigns(vec![
            fake("is-ser-1-sira64", 0.1, 5),
            fake("is-ser-1-sira32", 0.2, 10),
        ]);
        let matrix = correlation_matrix(&db, |c| c.id.ends_with("sira64"));
        assert!(matrix.iter().all(|c| c.n == 1));
    }
}
