//! Basic statistics used by the mining reports.

/// Arithmetic mean (0 for an empty slice).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population standard deviation (0 for fewer than two points).
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Pearson correlation coefficient; 0 when either series is constant or
/// the lengths differ.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    if xs.len() != ys.len() || xs.len() < 2 {
        return 0.0;
    }
    let mx = mean(xs);
    let my = mean(ys);
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        sxy += (x - mx) * (y - my);
        sxx += (x - mx) * (x - mx);
        syy += (y - my) * (y - my);
    }
    if sxx == 0.0 || syy == 0.0 {
        0.0
    } else {
        sxy / (sxx * syy).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(std_dev(&[5.0]), 0.0);
        assert!((std_dev(&[2.0, 4.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_extremes() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let up = [10.0, 20.0, 30.0, 40.0];
        let down = [4.0, 3.0, 2.0, 1.0];
        assert!((pearson(&xs, &up) - 1.0).abs() < 1e-12);
        assert!((pearson(&xs, &down) + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&xs, &[5.0, 5.0, 5.0, 5.0]), 0.0);
        assert_eq!(pearson(&xs, &[1.0]), 0.0);
    }

    #[test]
    fn pearson_uncorrelated_is_small() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
        let ys = [3.0, -1.0, 4.0, -1.0, 5.0, -9.0, 2.0, 6.0];
        assert!(pearson(&xs, &ys).abs() < 0.7);
    }
}
