//! # FRACAS — Fault injection and Reliability Analysis for Cores And Software
//!
//! A from-scratch Rust reproduction of *"Extensive Evaluation of
//! Programming Models and ISAs Impact on Multicore Soft Error
//! Reliability"* (DAC 2018): a full-system simulation stack — two
//! ARM-like ISAs, a cycle-counted multicore interpreter with caches, a
//! miniature OS, a compiler with softfloat lowering, OpenMP/MPI-like
//! guest runtimes and the NPB-T benchmarks — plus the fault-injection
//! campaign machinery and the cross-layer data-mining engine that
//! regenerate every table and figure of the paper.
//!
//! This facade re-exports the subsystem crates under short module names
//! and offers the high-level campaign drivers used by the benchmark
//! harness.
//!
//! ## Layer map
//!
//! | Module | Crate | Role |
//! |---|---|---|
//! | [`isa`] | `fracas-isa` | SIRA-32/SIRA-64 instruction sets, assembler, linker |
//! | [`mem`] | `fracas-mem` | physical memory, page permissions, cache hierarchy |
//! | [`cpu`] | `fracas-cpu` | deterministic multicore interpreter + timing |
//! | [`kernel`] | `fracas-kernel` | processes, threads, scheduler, syscalls |
//! | [`lang`] | `fracas-lang` | the FL compiler (both backends) |
//! | [`rt`] | `fracas-rt` | crt0, softfloat, OMP and MPI guest runtimes |
//! | [`npb`] | `fracas-npb` | the 29 NPB-T programs / 130 scenarios |
//! | [`analyze`] | `fracas-analyze` | CFG recovery, liveness, static AVF, prune oracle |
//! | [`inject`] | `fracas-inject` | fault model, campaigns, classification |
//! | [`mine`] | `fracas-mine` | statistics and table/figure mining |
//!
//! ## Quickstart
//!
//! Run a small fault-injection campaign on one scenario:
//!
//! ```no_run
//! use fracas::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let scenario = Scenario::new(App::Is, Model::Omp, 2, IsaKind::Sira64)
//!     .expect("scenario exists");
//! let result = run_scenario_campaign(
//!     &scenario,
//!     &CampaignConfig { faults: 200, ..CampaignConfig::default() },
//! )?;
//! for class in Outcome::ALL {
//!     println!("{class:>8}: {:5.1} %", result.tally.pct(class));
//! }
//! # Ok(())
//! # }
//! ```

pub use fracas_analyze as analyze;
pub use fracas_cpu as cpu;
pub use fracas_inject as inject;
pub use fracas_isa as isa;
pub use fracas_kernel as kernel;
pub use fracas_lang as lang;
pub use fracas_mem as mem;
pub use fracas_mine as mine;
pub use fracas_npb as npb;
pub use fracas_rt as rt;

use fracas_inject::{
    run_campaign, run_fleet, CampaignConfig, CampaignResult, FleetConfig, Workload,
};
use fracas_mine::Database;
use fracas_npb::Scenario;
use fracas_rt::BuildError;

/// The most commonly used types, for glob import.
pub mod prelude {
    pub use crate::{campaign_suite, run_scenario_campaign, sweep_scenarios};
    pub use fracas_inject::{
        golden_run, golden_run_with_checkpoints, inject_one, run_campaign, run_fleet,
        run_fleet_with_sink, CampaignConfig, CampaignResult, CheckpointSet, Fault, FaultSpace,
        FaultTarget, FleetConfig, Outcome, RecordSink, Tally, Workload,
    };
    pub use fracas_isa::IsaKind;
    pub use fracas_kernel::{BootSpec, Kernel, KernelSnapshot, Limits, RunOutcome};
    pub use fracas_mine::{Database, Key};
    pub use fracas_npb::{App, Model, Scenario};
}

/// Builds and runs a fault-injection campaign for one NPB scenario.
///
/// # Errors
///
/// Returns a [`BuildError`] if the scenario's guest program fails to
/// build (a bundled-program bug, covered by tests).
pub fn run_scenario_campaign(
    scenario: &Scenario,
    config: &CampaignConfig,
) -> Result<CampaignResult, BuildError> {
    let workload = Workload::from_scenario(scenario)?;
    Ok(run_campaign(&workload, config))
}

/// Sweeps a set of scenarios through the fleet orchestrator — one
/// shared worker pool across every workload's golden run, checkpoint
/// ladder and injection batches — and merges the results into a
/// [`Database`]. With `config.epsilon == 0` this is byte-identical to
/// [`campaign_suite`], only faster on multicore hosts; for streaming
/// records and crash-safe resume, build the workloads yourself and call
/// [`fracas_inject::run_fleet_with_sink`].
///
/// # Errors
///
/// Returns the first [`BuildError`] encountered while building the
/// scenario images.
pub fn sweep_scenarios(
    scenarios: &[Scenario],
    config: &FleetConfig,
) -> Result<Database, BuildError> {
    let workloads = scenarios
        .iter()
        .map(Workload::from_scenario)
        .collect::<Result<Vec<_>, _>>()?;
    Ok(Database::from_campaigns(run_fleet(&workloads, config)))
}

/// Runs campaigns over a set of scenarios and merges them into a
/// [`Database`] (the paper's phase-four single database). `progress` is
/// called after each scenario with (done, total, &result). The fleet
/// variant of this — shared worker pool, early stopping, resume — is
/// [`sweep_scenarios`].
///
/// # Errors
///
/// Returns the first [`BuildError`] encountered.
pub fn campaign_suite(
    scenarios: &[Scenario],
    config: &CampaignConfig,
    mut progress: impl FnMut(usize, usize, &CampaignResult),
) -> Result<Database, BuildError> {
    let mut db = Database::new();
    for (i, scenario) in scenarios.iter().enumerate() {
        let result = run_scenario_campaign(scenario, config)?;
        progress(i + 1, scenarios.len(), &result);
        db.push(result);
    }
    Ok(db)
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn quickstart_campaign_runs() {
        let scenario = Scenario::new(App::Is, Model::Serial, 1, IsaKind::Sira64).unwrap();
        let result = crate::run_scenario_campaign(
            &scenario,
            &CampaignConfig {
                faults: 10,
                threads: 1,
                ..CampaignConfig::default()
            },
        )
        .unwrap();
        assert_eq!(result.tally.total(), 10);
    }

    #[test]
    fn suite_merges_and_reports_progress() {
        let scenarios: Vec<Scenario> = [
            Scenario::new(App::Is, Model::Serial, 1, IsaKind::Sira64),
            Scenario::new(App::Ep, Model::Serial, 1, IsaKind::Sira64),
        ]
        .into_iter()
        .flatten()
        .collect();
        let mut seen = Vec::new();
        let db = crate::campaign_suite(
            &scenarios,
            &CampaignConfig {
                faults: 5,
                threads: 1,
                ..CampaignConfig::default()
            },
            |done, total, r| seen.push((done, total, r.id.clone())),
        )
        .unwrap();
        assert_eq!(db.len(), 2);
        assert_eq!(seen.len(), 2);
        assert_eq!(seen[0], (1, 2, "is-ser-1-sira64".to_string()));
        assert!(db
            .get(Key {
                app: App::Ep,
                model: Model::Serial,
                cores: 1,
                isa: IsaKind::Sira64
            })
            .is_some());
    }

    #[test]
    fn sweep_scenarios_matches_campaign_suite_byte_for_byte() {
        let scenarios: Vec<Scenario> = [
            Scenario::new(App::Is, Model::Serial, 1, IsaKind::Sira64),
            Scenario::new(App::Ep, Model::Serial, 1, IsaKind::Sira64),
        ]
        .into_iter()
        .flatten()
        .collect();
        let campaign = CampaignConfig {
            faults: 8,
            ..CampaignConfig::default()
        };
        let suite = crate::campaign_suite(&scenarios, &campaign, |_, _, _| {}).unwrap();
        let sweep = crate::sweep_scenarios(
            &scenarios,
            &FleetConfig {
                campaign,
                ..FleetConfig::default()
            },
        )
        .unwrap();
        assert_eq!(sweep.to_json_lines(), suite.to_json_lines());
    }
}
