//! Cache hierarchy with MESI-style coherence statistics and a
//! value-carrying fault overlay.
//!
//! Geometry follows the paper's §3.1 platform: per-core L1I 32 kB /
//! 4-way and L1D 32 kB / 4-way, shared L2 512 kB / 8-way, 64-byte lines,
//! LRU replacement. Functionally the model stays write-through: data
//! lives in [`crate::PhysMem`] and the tag stores produce timing and
//! statistics. Two fault-state layers sit on top, both empty (and
//! zero-cost) in a fault-free run:
//!
//! * per-core [`StoreBuffer`]s — pending stores between core and L1D,
//!   with store-to-load forwarding once a strike taints an entry;
//! * lazy per-line *data overlays* — a [`MemSystem::flip_data_bit`]
//!   strike materialises a 64-byte copy of the struck line from memory,
//!   corrupts it, and the overlay (not memory) then answers loads that
//!   hit that physical line slot, so a cache-data upset serves a stale
//!   value exactly like a real SRAM flip would.

use crate::phys::PhysMem;
use crate::store::StoreBuffer;
use std::collections::BTreeMap;
use std::fmt;

/// What kind of access hits the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// Instruction fetch (L1I path).
    Fetch,
    /// Data load (L1D path).
    DataRead,
    /// Data store (L1D path, write-allocate).
    DataWrite,
}

/// Cache geometry and latency parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheParams {
    /// L1 (instruction and data) size in bytes.
    pub l1_size: u32,
    /// L1 associativity.
    pub l1_ways: u32,
    /// Shared L2 size in bytes.
    pub l2_size: u32,
    /// L2 associativity.
    pub l2_ways: u32,
    /// Cache line size in bytes.
    pub line: u32,
    /// Extra cycles for an L1 miss that hits L2.
    pub l2_hit_cycles: u32,
    /// Extra cycles for a miss that goes to memory.
    pub mem_cycles: u32,
}

impl CacheParams {
    /// The paper's configuration: L1 32 kB 4-way, L2 512 kB 8-way.
    pub fn paper() -> CacheParams {
        CacheParams {
            l1_size: 32 << 10,
            l1_ways: 4,
            l2_size: 512 << 10,
            l2_ways: 8,
            line: 64,
            l2_hit_cycles: 8,
            mem_cycles: 48,
        }
    }

    /// Number of lines in one L1 tag store (`set_count * ways`; 512 for
    /// the paper's 32 kB / 4-way geometry). This is the cache-state
    /// fault space's per-L1 extent, so it must match the slab
    /// [`MemSystem`] actually allocates.
    pub fn l1_lines(&self) -> u32 {
        (self.l1_size / self.line / self.l1_ways).max(1) * self.l1_ways
    }

    /// Number of lines in the shared L2 tag store (8192 for the paper's
    /// 512 kB / 8-way geometry).
    pub fn l2_lines(&self) -> u32 {
        (self.l2_size / self.line / self.l2_ways).max(1) * self.l2_ways
    }
}

impl Default for CacheParams {
    fn default() -> CacheParams {
        CacheParams::paper()
    }
}

/// Hit/miss and coherence counters for one cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
    /// Lines invalidated by another core's write (L1D only).
    pub invalidations: u64,
    /// Dirty lines written back on eviction or downgrade.
    pub writebacks: u64,
}

impl CacheStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss ratio in `[0, 1]`; zero when idle.
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses() as f64
        }
    }
}

/// A rejected fault coordinate from one of the checked flip hooks
/// ([`MemSystem::flip_bit`], [`MemSystem::flip_data_bit`],
/// [`MemSystem::flip_storebuf`]). Campaign-sampled faults are in range
/// by construction; this surfaces a mis-derived geometry (a future
/// domain edit) as a harness anomaly instead of indexing garbage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlipError {
    /// No such unit selector.
    UnknownUnit(u32),
    /// Core index past the hierarchy's core count.
    CoreRange {
        /// The rejected index.
        core: usize,
        /// The hierarchy's core count.
        cores: usize,
    },
    /// Line index past the selected tag store.
    LineRange {
        /// The rejected index.
        line: usize,
        /// The store's line count.
        lines: usize,
    },
    /// Store-buffer entry index past the FIFO depth.
    EntryRange {
        /// The rejected index.
        entry: usize,
        /// The FIFO depth.
        entries: usize,
    },
}

impl fmt::Display for FlipError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlipError::UnknownUnit(unit) => write!(f, "unknown cache unit {unit}"),
            FlipError::CoreRange { core, cores } => {
                write!(f, "core {core} out of range (hierarchy has {cores})")
            }
            FlipError::LineRange { line, lines } => {
                write!(f, "line {line} out of range (store has {lines})")
            }
            FlipError::EntryRange { entry, entries } => {
                write!(
                    f,
                    "store-buffer entry {entry} out of range (depth {entries})"
                )
            }
        }
    }
}

impl std::error::Error for FlipError {}

/// MESI line states (the model distinguishes dirty vs clean and
/// shared vs exclusive for the coherence counters). `Invalid` never
/// arises in a fault-free run — occupancy is tracked by the
/// [`INVALID_TAG`] sentinel instead — it exists so a particle strike on
/// the 2-bit state field ([`SetAssoc::flip_line_bit`]) has somewhere to
/// land; an `Invalid` line misses on lookup like an empty way.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mesi {
    Modified,
    Exclusive,
    Shared,
    Invalid,
}

impl Mesi {
    /// The 2-bit SRAM encoding of the state field the fault model
    /// flips: M=0, E=1, S=2, I=3.
    fn code(self) -> u32 {
        match self {
            Mesi::Modified => 0,
            Mesi::Exclusive => 1,
            Mesi::Shared => 2,
            Mesi::Invalid => 3,
        }
    }

    fn from_code(code: u32) -> Mesi {
        match code & 3 {
            0 => Mesi::Modified,
            1 => Mesi::Exclusive,
            2 => Mesi::Shared,
            _ => Mesi::Invalid,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Line {
    tag: u32,
    state: Mesi,
    lru: u64,
}

/// Tag sentinel marking an empty way. Real tags are
/// `addr >> (line_bits + set_bits)` with at least one bit shifted
/// out, so they can never be `u32::MAX`.
const INVALID_TAG: u32 = u32::MAX;

/// A materialised data copy of one resident cache line: the fault
/// overlay behind [`MemSystem::flip_data_bit`]. `base` is the line's
/// physical base address — the overlay serves a load only while the
/// slot's occupant still maps there, so a later tag strike cannot leak
/// the bytes to an unrelated address.
#[derive(Debug, Clone, PartialEq, Eq)]
struct LineOverlay {
    base: u32,
    bytes: [u8; 64],
}

/// A set-associative tag store, laid out as one dense
/// `set_count * ways` slab (set `s` owns `lines[s*ways..(s+1)*ways]`)
/// so a lookup touches a single contiguous run of 12-byte entries —
/// this sits on the interpreter's per-instruction fetch path, where
/// the previous vec-of-vecs layout cost a dependent pointer chase per
/// access.
///
/// Replacement semantics are unchanged from the vec-of-vecs model:
/// fills prefer an empty way, otherwise evict the least recently used
/// (LRU stamps come from a strictly increasing per-cache tick, so the
/// minimum is unique and the victim choice cannot depend on way
/// order).
///
/// `lookup`/`insert`/`remove` report the slab index of the line they
/// touched so the data-overlay bookkeeping can key off the physical
/// slot without a second (tick-bumping, hence timing-visible) walk.
#[derive(Debug, Clone, PartialEq, Eq)]
struct SetAssoc {
    lines: Box<[Line]>,
    ways: usize,
    set_shift: u32,
    set_mask: u32,
    tick: u64,
}

impl SetAssoc {
    fn new(size: u32, ways: u32, line: u32) -> SetAssoc {
        let set_count = (size / line / ways).max(1);
        assert!(
            set_count.is_power_of_two(),
            "set count must be a power of two"
        );
        let empty = Line {
            tag: INVALID_TAG,
            state: Mesi::Shared,
            lru: 0,
        };
        SetAssoc {
            lines: vec![empty; (set_count * ways) as usize].into_boxed_slice(),
            ways: ways as usize,
            set_shift: line.trailing_zeros(),
            set_mask: set_count - 1,
            tick: 0,
        }
    }

    fn index(&self, addr: u32) -> (usize, u32) {
        let block = addr >> self.set_shift;
        (
            (block & self.set_mask) as usize,
            block >> self.set_mask.trailing_ones(),
        )
    }

    /// The line's physical base address, reconstructed from its slab
    /// slot and stored tag (the inverse of [`SetAssoc::index`]).
    fn base_addr(&self, slot: usize) -> u32 {
        let set = (slot / self.ways) as u32;
        let block = (self.lines[slot].tag << self.set_mask.trailing_ones()) | set;
        block << self.set_shift
    }

    #[inline]
    fn lookup(&mut self, addr: u32) -> Option<usize> {
        self.tick += 1;
        let tick = self.tick;
        let (set, tag) = self.index(addr);
        let slot = self.lines[set * self.ways..(set + 1) * self.ways]
            .iter()
            .position(|l| l.tag == tag && l.state != Mesi::Invalid)?
            + set * self.ways;
        self.lines[slot].lru = tick;
        Some(slot)
    }

    /// Inserts a line, returning its slab slot and the evicted line if
    /// the set was full.
    fn insert(&mut self, addr: u32, state: Mesi) -> (usize, Option<Line>) {
        self.tick += 1;
        let tick = self.tick;
        let (set, tag) = self.index(addr);
        let ways = &mut self.lines[set * self.ways..(set + 1) * self.ways];
        let (way, evicted) = match ways.iter().position(|l| l.tag == INVALID_TAG) {
            Some(empty) => (empty, None),
            None => {
                let victim = ways
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, l)| l.lru)
                    .map(|(i, _)| i)
                    .expect("non-empty set");
                (victim, Some(ways[victim]))
            }
        };
        ways[way] = Line {
            tag,
            state,
            lru: tick,
        };
        (set * self.ways + way, evicted)
    }

    fn remove(&mut self, addr: u32) -> Option<(usize, Line)> {
        let (set, tag) = self.index(addr);
        let ways = &mut self.lines[set * self.ways..(set + 1) * self.ways];
        let i = ways
            .iter()
            .position(|l| l.tag == tag && l.state != Mesi::Invalid)?;
        let line = ways[i];
        ways[i] = Line {
            tag: INVALID_TAG,
            state: Mesi::Shared,
            lru: 0,
        };
        Some((set * self.ways + i, line))
    }

    /// Fault hook: XORs one bit of the `line`-th tag-store entry.
    /// The 40-bit per-line layout mirrors the SRAM a strike would hit —
    /// bits 0–31 the tag, 32–33 the 2-bit MESI state code, 34–39 the
    /// low six bits of the LRU stamp. `bit` wraps at 40 (the domain's
    /// adjacent-bit modulus); the caller has range-checked `line`. Pure
    /// XOR on every field, so applying the same flip twice is the
    /// identity.
    fn flip_line_bit(&mut self, line: usize, bit: u32) {
        let l = &mut self.lines[line];
        match bit % 40 {
            b @ 0..=31 => l.tag ^= 1 << b,
            b @ 32..=33 => l.state = Mesi::from_code(l.state.code() ^ (1 << (b - 32))),
            b => l.lru ^= 1 << (b - 34),
        }
    }

    /// Number of lines in this tag store.
    fn line_count(&self) -> usize {
        self.lines.len()
    }
}

/// The multicore cache hierarchy: one L1I + L1D pair per core, a shared
/// L2 with MESI bookkeeping between the L1 data caches, one
/// [`StoreBuffer`] per core, and the lazy data-overlay map behind the
/// `cachedata` fault domain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemSystem {
    params: CacheParams,
    l1i: Vec<SetAssoc>,
    l1d: Vec<SetAssoc>,
    l2: SetAssoc,
    l1i_stats: Vec<CacheStats>,
    l1d_stats: Vec<CacheStats>,
    l2_stats: CacheStats,
    /// Per-core line address (`addr >> line_bits`) of the most recent
    /// instruction fetch, or `u32::MAX` when unknown. Because the L1I
    /// is touched only by its own core's fetches (data snoops and
    /// invalidations act on the L1D side) and an L1I hit costs zero
    /// extra cycles, a repeat fetch to the same line can be answered
    /// without walking the tag store: the line is still resident, the
    /// answer is "hit, penalty 0", and skipping the intermediate LRU
    /// stamps cannot change any future eviction — no other L1I access
    /// interleaves with the repeats, so the line's relative recency
    /// against every other line is unchanged.
    fetch_line: Vec<u32>,
    /// Per-core store buffers. Shadow state is pushed on every store;
    /// only a strike makes one observable (see [`crate::store`]).
    sbuf: Vec<StoreBuffer>,
    /// Materialised data copies of struck lines, keyed by
    /// `(unit, core, slab slot)` (core 0 for the shared L2). Empty in
    /// a fault-free run; a `BTreeMap` so iteration order, equality and
    /// clones are deterministic.
    overlays: BTreeMap<(u32, u32, u32), LineOverlay>,
}

impl MemSystem {
    /// [`MemSystem::flip_bit`] unit selector: a per-core L1 instruction
    /// tag store.
    pub const UNIT_L1I: u32 = 0;
    /// [`MemSystem::flip_bit`] unit selector: a per-core L1 data tag
    /// store.
    pub const UNIT_L1D: u32 = 1;
    /// [`MemSystem::flip_bit`] unit selector: the shared L2 tag store.
    pub const UNIT_L2: u32 = 2;
    /// Bits per tag-store line in the cache-state fault model (32 tag +
    /// 2 MESI state + 6 LRU-stamp bits).
    pub const LINE_BITS: u32 = 40;
    /// Bits per line in the cache-data fault model (the 64 data bytes).
    pub const DATA_LINE_BITS: u32 = 512;

    /// Creates a hierarchy for `cores` cores.
    pub fn new(cores: usize, params: CacheParams) -> MemSystem {
        MemSystem {
            params,
            l1i: (0..cores)
                .map(|_| SetAssoc::new(params.l1_size, params.l1_ways, params.line))
                .collect(),
            l1d: (0..cores)
                .map(|_| SetAssoc::new(params.l1_size, params.l1_ways, params.line))
                .collect(),
            l2: SetAssoc::new(params.l2_size, params.l2_ways, params.line),
            l1i_stats: vec![CacheStats::default(); cores],
            l1d_stats: vec![CacheStats::default(); cores],
            l2_stats: CacheStats::default(),
            fetch_line: vec![u32::MAX; cores],
            sbuf: vec![StoreBuffer::default(); cores],
            overlays: BTreeMap::new(),
        }
    }

    /// Number of cores the hierarchy serves.
    pub fn cores(&self) -> usize {
        self.l1i.len()
    }

    /// The configured parameters.
    pub fn params(&self) -> CacheParams {
        self.params
    }

    /// Simulates one access by `core`, returning the extra latency in
    /// cycles beyond the L1-hit base cost (0 for an L1 hit). This is
    /// the timing-only entry point (instruction fetch, and data
    /// accesses that do not consult the value layers); loads and stores
    /// on the execution path go through [`MemSystem::data_read`] /
    /// [`MemSystem::data_write`], which produce identical timing.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    #[inline]
    pub fn access(&mut self, core: usize, access: Access, addr: u32) -> u32 {
        match access {
            Access::Fetch => self.access_l1i(core, addr),
            Access::DataRead => self.l1d_slot_access(core, addr, false).0,
            Access::DataWrite => self.l1d_slot_access(core, addr, true).0,
        }
    }

    /// One data load by `core`: runs the exact timing access of
    /// [`Access::DataRead`] and additionally consults the value layers,
    /// youngest first — a tainted store-buffer entry forwards, else a
    /// data overlay on the serving L1D slot answers. Returns the
    /// penalty and `Some(value)` when a layer overrides the
    /// write-through memory value (never in a fault-free run).
    #[inline]
    pub fn data_read(&mut self, core: usize, addr: u32, bytes: u32) -> (u32, Option<u64>) {
        let forwarded = if self.sbuf[core].is_tainted() {
            self.sbuf[core].forward(addr, bytes as u8)
        } else {
            None
        };
        let (penalty, slot) = self.l1d_slot_access(core, addr, false);
        let value = forwarded.or_else(|| self.overlay_value(core, slot, addr, bytes));
        (penalty, value)
    }

    /// One data store by `core`: pushes the store into the core's
    /// buffer (recycling — and, if struck, draining — the oldest
    /// entry), runs the exact timing access of [`Access::DataWrite`]
    /// and folds the new value into any data overlay on the serving
    /// slot. The caller has already written `value` through to `mem`;
    /// an overlay that becomes byte-identical to memory dissolves.
    #[inline]
    pub fn data_write(
        &mut self,
        core: usize,
        addr: u32,
        bytes: u32,
        value: u64,
        mem: &mut PhysMem,
    ) -> u32 {
        self.sbuf[core].push(addr, bytes as u8, value, mem);
        let (penalty, slot) = self.l1d_slot_access(core, addr, true);
        if !self.overlays.is_empty() {
            self.store_into_overlay(core, slot, addr, bytes, value, mem);
        }
        penalty
    }

    /// Drains `core`'s store buffer to memory (a fence: SVC entry,
    /// halt, atomics). A no-op unless a strike tainted an entry.
    #[inline]
    pub fn drain_store_buffer(&mut self, core: usize, mem: &mut PhysMem) {
        self.sbuf[core].drain_all(mem);
    }

    #[inline]
    fn access_l1i(&mut self, core: usize, addr: u32) -> u32 {
        // Same-line repeat fetch: resident by construction (see
        // `fetch_line`), hit with zero penalty.
        let line = addr >> self.params.line.trailing_zeros();
        if self.fetch_line[core] == line {
            self.l1i_stats[core].hits += 1;
            return 0;
        }
        self.fetch_line[core] = line;
        if self.l1i[core].lookup(addr).is_some() {
            self.l1i_stats[core].hits += 1;
            return 0;
        }
        self.l1i_stats[core].misses += 1;
        let (penalty, _) = self.access_l2(addr, false);
        self.l1i[core].insert(addr, Mesi::Shared);
        penalty
    }

    /// The L1D access path, returning the penalty and the slab slot of
    /// the line that served (or was just filled for) `addr`. All data-
    /// overlay bookkeeping rides the slots the timing walk already
    /// computed — never an extra `lookup`, which would bump LRU ticks
    /// and change golden timing.
    fn l1d_slot_access(&mut self, core: usize, addr: u32, write: bool) -> (u32, usize) {
        // Hit path.
        if let Some(slot) = self.l1d[core].lookup(addr) {
            self.l1d_stats[core].hits += 1;
            let line = &mut self.l1d[core].lines[slot];
            let upgrade = write && line.state == Mesi::Shared;
            if write {
                line.state = Mesi::Modified;
            }
            if upgrade {
                // BusUpgr: invalidate every other copy.
                self.invalidate_others(core, addr);
            }
            return (0, slot);
        }
        self.l1d_stats[core].misses += 1;

        // Snoop other L1Ds; a Modified copy elsewhere must be written back.
        let mut shared_elsewhere = false;
        for other in 0..self.l1d.len() {
            if other == core {
                continue;
            }
            if write {
                if let Some((oslot, line)) = self.l1d[other].remove(addr) {
                    self.l1d_stats[other].invalidations += 1;
                    if line.state == Mesi::Modified {
                        self.l1d_stats[other].writebacks += 1;
                    }
                    self.drop_overlay(Self::UNIT_L1D, other, oslot);
                }
            } else if let Some(oslot) = self.l1d[other].lookup(addr) {
                let line = &mut self.l1d[other].lines[oslot];
                if line.state == Mesi::Modified {
                    self.l1d_stats[other].writebacks += 1;
                }
                line.state = Mesi::Shared;
                shared_elsewhere = true;
            }
        }

        let (penalty, l2_hit_slot) = self.access_l2(addr, write);
        let state = if write {
            Mesi::Modified
        } else if shared_elsewhere {
            Mesi::Shared
        } else {
            Mesi::Exclusive
        };
        let (slot, evicted) = self.l1d[core].insert(addr, state);
        if let Some(evicted) = evicted {
            if evicted.state == Mesi::Modified {
                self.l1d_stats[core].writebacks += 1;
            }
        }
        if !self.overlays.is_empty() {
            // The fill replaces the slot's occupant: its overlay (if
            // any) leaves with it — a clean-line eviction discards the
            // strike — and a struck L2 copy of the *new* line
            // propagates down with the fill.
            self.drop_overlay(Self::UNIT_L1D, core, slot);
            if let Some(l2s) = l2_hit_slot {
                self.propagate_l2_overlay(l2s, addr, core, slot);
            }
        }
        (penalty, slot)
    }

    fn access_l2(&mut self, addr: u32, write: bool) -> (u32, Option<usize>) {
        if let Some(slot) = self.l2.lookup(addr) {
            self.l2_stats.hits += 1;
            if write {
                self.l2.lines[slot].state = Mesi::Modified;
            }
            return (self.params.l2_hit_cycles, Some(slot));
        }
        self.l2_stats.misses += 1;
        let state = if write {
            Mesi::Modified
        } else {
            Mesi::Exclusive
        };
        let (slot, evicted) = self.l2.insert(addr, state);
        if let Some(evicted) = evicted {
            if evicted.state == Mesi::Modified {
                self.l2_stats.writebacks += 1;
            }
        }
        // The fill comes from memory, so the slot's previous occupant's
        // overlay (if struck) is discarded with it.
        self.drop_overlay(Self::UNIT_L2, 0, slot);
        (self.params.l2_hit_cycles + self.params.mem_cycles, None)
    }

    fn invalidate_others(&mut self, core: usize, addr: u32) {
        for other in 0..self.l1d.len() {
            if other != core {
                if let Some((oslot, _)) = self.l1d[other].remove(addr) {
                    self.l1d_stats[other].invalidations += 1;
                    self.drop_overlay(Self::UNIT_L1D, other, oslot);
                }
            }
        }
    }

    // ----- data-overlay bookkeeping ---------------------------------------

    fn drop_overlay(&mut self, unit: u32, core: usize, slot: usize) {
        if !self.overlays.is_empty() {
            self.overlays.remove(&(unit, core as u32, slot as u32));
        }
    }

    /// Copies a struck L2 line's overlay down to the L1D slot a fill
    /// just installed it in: the L1D fill reads the (corrupted) L2
    /// copy, not memory.
    fn propagate_l2_overlay(&mut self, l2_slot: usize, addr: u32, core: usize, l1_slot: usize) {
        let base = addr & !(self.params.line - 1);
        if let Some(ov) = self.overlays.get(&(Self::UNIT_L2, 0, l2_slot as u32)) {
            if ov.base == base {
                let ov = ov.clone();
                self.overlays
                    .insert((Self::UNIT_L1D, core as u32, l1_slot as u32), ov);
            }
        }
    }

    /// The overlay-served value for a load that the L1D answered from
    /// `slot`, or `None` when no (address-matching) overlay covers it.
    fn overlay_value(&self, core: usize, slot: usize, addr: u32, bytes: u32) -> Option<u64> {
        if self.overlays.is_empty() {
            return None;
        }
        let line_mask = self.params.line - 1;
        let ov = self
            .overlays
            .get(&(Self::UNIT_L1D, core as u32, slot as u32))?;
        if ov.base != addr & !line_mask {
            return None;
        }
        let off = (addr & line_mask) as usize;
        let end = off + bytes as usize;
        if end > ov.bytes.len() {
            return None;
        }
        let mut v = 0u64;
        for (i, &b) in ov.bytes[off..end].iter().enumerate() {
            v |= u64::from(b) << (8 * i);
        }
        Some(v)
    }

    /// Folds a store's value into the overlay covering its serving
    /// slot, dissolving the overlay if it becomes byte-identical to
    /// memory (the store overwrote the corrupted bytes).
    fn store_into_overlay(
        &mut self,
        core: usize,
        slot: usize,
        addr: u32,
        bytes: u32,
        value: u64,
        mem: &PhysMem,
    ) {
        let line_mask = self.params.line - 1;
        let key = (Self::UNIT_L1D, core as u32, slot as u32);
        let Some(ov) = self.overlays.get_mut(&key) else {
            return;
        };
        if ov.base != addr & !line_mask {
            return;
        }
        let off = (addr & line_mask) as usize;
        let end = off + bytes as usize;
        if end > ov.bytes.len() {
            return;
        }
        for (i, b) in ov.bytes[off..end].iter_mut().enumerate() {
            *b = (value >> (8 * i)) as u8;
        }
        if let Ok(current) = mem.read_bytes(ov.base, 64) {
            if current == ov.bytes {
                self.overlays.remove(&key);
            }
        }
    }

    /// Per-core L1 instruction-cache statistics.
    pub fn l1i_stats(&self, core: usize) -> CacheStats {
        self.l1i_stats[core]
    }

    /// Per-core L1 data-cache statistics.
    pub fn l1d_stats(&self, core: usize) -> CacheStats {
        self.l1d_stats[core]
    }

    /// Shared L2 statistics.
    pub fn l2_stats(&self) -> CacheStats {
        self.l2_stats
    }

    /// Lines per L1 tag store (each of L1I and L1D, per core).
    pub fn l1_line_count(&self) -> usize {
        self.l1i.first().map_or(0, SetAssoc::line_count)
    }

    /// Lines in the shared L2 tag store.
    pub fn l2_line_count(&self) -> usize {
        self.l2.line_count()
    }

    /// Fault hook: XORs one bit of a tag-store line. `unit` selects the
    /// store — [`MemSystem::UNIT_L1I`], [`MemSystem::UNIT_L1D`] or
    /// [`MemSystem::UNIT_L2`] (`core` is ignored for the shared L2) —
    /// and `bit` addresses the 40-bit line layout of
    /// `SetAssoc::flip_line_bit` (tag, MESI code, low LRU bits),
    /// wrapping at 40. Out-of-range units, cores and lines are rejected
    /// with a [`FlipError`] so a mis-derived fault coordinate surfaces
    /// as a campaign anomaly instead of silently landing nowhere.
    ///
    /// The same-line fetch memo (`fetch_line`) is deliberately *not*
    /// reset by an L1I flip: the memo models the core's fetch line
    /// buffer, which holds the streamed instructions themselves and is
    /// untouched by a strike on the tag SRAM behind it. The corruption
    /// becomes observable at the next fetch that leaves the buffered
    /// line — the first real tag lookup — and keeping the hook pure
    /// XOR/toggle preserves the apply-twice-is-identity involution every
    /// registered fault domain guarantees.
    ///
    /// # Errors
    ///
    /// [`FlipError`] on an out-of-range unit, core or line; the flip is
    /// not applied.
    pub fn flip_bit(
        &mut self,
        unit: u32,
        core: usize,
        line: usize,
        bit: u32,
    ) -> Result<(), FlipError> {
        let store = self.unit_store(unit, core)?;
        let lines = store.line_count();
        if line >= lines {
            return Err(FlipError::LineRange { line, lines });
        }
        store.flip_line_bit(line, bit);
        Ok(())
    }

    /// Fault hook behind the `cachedata` domain: XORs one bit of a
    /// resident line's 64-byte data copy. `unit` is
    /// [`MemSystem::UNIT_L1D`] or [`MemSystem::UNIT_L2`] (the L1I's
    /// data is the text domain's territory) and `bit` wraps at
    /// [`MemSystem::DATA_LINE_BITS`].
    ///
    /// The copy is materialised lazily: the first strike on a line
    /// snapshots its bytes from `mem` into an overlay and corrupts
    /// that; loads served from the slot then read the overlay. A strike
    /// on an empty or `Invalid` way is a no-op (there is no data to
    /// corrupt — the fault masks), as is one on a phantom line whose
    /// reconstructed address falls outside memory. An overlay that
    /// returns to byte-equality with memory dissolves, which is what
    /// makes the hook an involution: the same flip twice restores the
    /// snapshot exactly and the overlay map returns to its prior state.
    ///
    /// # Errors
    ///
    /// [`FlipError`] on an out-of-range or non-data unit, core or line;
    /// the flip is not applied.
    pub fn flip_data_bit(
        &mut self,
        unit: u32,
        core: usize,
        line: usize,
        bit: u32,
        mem: &PhysMem,
    ) -> Result<(), FlipError> {
        if unit != Self::UNIT_L1D && unit != Self::UNIT_L2 {
            return Err(FlipError::UnknownUnit(unit));
        }
        let store = self.unit_store(unit, core)?;
        let lines = store.line_count();
        if line >= lines {
            return Err(FlipError::LineRange { line, lines });
        }
        let l = store.lines[line];
        if l.tag == INVALID_TAG || l.state == Mesi::Invalid {
            return Ok(()); // empty way: the strike masks
        }
        let base = store.base_addr(line);
        let key = (
            unit,
            if unit == Self::UNIT_L2 {
                0
            } else {
                core as u32
            },
            line as u32,
        );
        let mut ov = match self.overlays.get(&key) {
            Some(ov) if ov.base == base => ov.clone(),
            _ => {
                let Ok(bytes) = mem.read_bytes(base, 64) else {
                    return Ok(()); // phantom line outside memory: masks
                };
                let mut copy = [0u8; 64];
                copy.copy_from_slice(bytes);
                LineOverlay { base, bytes: copy }
            }
        };
        let bit = bit % Self::DATA_LINE_BITS;
        ov.bytes[(bit / 8) as usize] ^= 1 << (bit % 8);
        let dissolved = mem
            .read_bytes(base, 64)
            .is_ok_and(|current| current == ov.bytes);
        if dissolved {
            self.overlays.remove(&key);
        } else {
            self.overlays.insert(key, ov);
        }
        Ok(())
    }

    /// Fault hook behind the `storebuf` domain: XORs one bit of a
    /// store-buffer entry's 97-bit payload (see [`StoreBuffer::flip`]
    /// for the layout; `bit` wraps per entry so an MBU burst never
    /// crosses entries).
    ///
    /// # Errors
    ///
    /// [`FlipError`] on an out-of-range core or entry; the flip is not
    /// applied.
    pub fn flip_storebuf(&mut self, core: usize, entry: usize, bit: u32) -> Result<(), FlipError> {
        let cores = self.sbuf.len();
        let Some(sb) = self.sbuf.get_mut(core) else {
            return Err(FlipError::CoreRange { core, cores });
        };
        if entry >= crate::store::STORE_BUFFER_ENTRIES {
            return Err(FlipError::EntryRange {
                entry,
                entries: crate::store::STORE_BUFFER_ENTRIES,
            });
        }
        sb.flip(entry, bit);
        Ok(())
    }

    fn unit_store(&mut self, unit: u32, core: usize) -> Result<&mut SetAssoc, FlipError> {
        let cores = self.l1i.len();
        match unit {
            Self::UNIT_L1I => self
                .l1i
                .get_mut(core)
                .ok_or(FlipError::CoreRange { core, cores }),
            Self::UNIT_L1D => self
                .l1d
                .get_mut(core)
                .ok_or(FlipError::CoreRange { core, cores }),
            Self::UNIT_L2 => Ok(&mut self.l2),
            _ => Err(FlipError::UnknownUnit(unit)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CacheParams {
        CacheParams {
            l1_size: 1024,
            l1_ways: 2,
            l2_size: 4096,
            l2_ways: 4,
            line: 64,
            l2_hit_cycles: 8,
            mem_cycles: 40,
        }
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut m = MemSystem::new(1, small());
        assert_eq!(m.access(0, Access::DataRead, 0x1000), 48);
        assert_eq!(m.access(0, Access::DataRead, 0x1000), 0);
        assert_eq!(
            m.access(0, Access::DataRead, 0x1020),
            0,
            "same 64-byte line"
        );
        assert_eq!(m.l1d_stats(0).hits, 2);
        assert_eq!(m.l1d_stats(0).misses, 1);
    }

    #[test]
    fn l2_backs_l1_evictions() {
        let mut m = MemSystem::new(1, small());
        // L1: 1024 B / 64 B / 2 ways = 8 sets. Three lines mapping to the
        // same set evict one from L1 but it stays in L2.
        let set_stride = 8 * 64;
        m.access(0, Access::DataRead, 0);
        m.access(0, Access::DataRead, set_stride);
        m.access(0, Access::DataRead, 2 * set_stride); // evicts line 0 from L1
        let penalty = m.access(0, Access::DataRead, 0);
        assert_eq!(penalty, 8, "L1 miss, L2 hit");
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut m = MemSystem::new(1, small());
        let set_stride = 8 * 64;
        m.access(0, Access::DataRead, 0);
        m.access(0, Access::DataRead, set_stride);
        m.access(0, Access::DataRead, 0); // refresh line 0
        m.access(0, Access::DataRead, 2 * set_stride); // must evict line 1
        assert_eq!(m.access(0, Access::DataRead, 0), 0, "line 0 still resident");
    }

    #[test]
    fn write_invalidates_other_cores() {
        let mut m = MemSystem::new(2, small());
        m.access(0, Access::DataRead, 0x2000);
        m.access(1, Access::DataRead, 0x2000);
        // Core 1 writes: core 0's copy must be invalidated.
        m.access(1, Access::DataWrite, 0x2000);
        assert_eq!(m.l1d_stats(0).invalidations, 1);
        // Core 0 re-reads: that's a miss now.
        let misses_before = m.l1d_stats(0).misses;
        m.access(0, Access::DataRead, 0x2000);
        assert_eq!(m.l1d_stats(0).misses, misses_before + 1);
    }

    #[test]
    fn modified_line_written_back_when_snooped() {
        let mut m = MemSystem::new(2, small());
        m.access(0, Access::DataWrite, 0x3000);
        m.access(1, Access::DataRead, 0x3000);
        assert_eq!(m.l1d_stats(0).writebacks, 1);
    }

    #[test]
    fn fetch_uses_instruction_cache() {
        let mut m = MemSystem::new(1, small());
        m.access(0, Access::Fetch, 0x1000);
        m.access(0, Access::Fetch, 0x1000);
        assert_eq!(m.l1i_stats(0).hits, 1);
        assert_eq!(m.l1i_stats(0).misses, 1);
        assert_eq!(m.l1d_stats(0).accesses(), 0);
    }

    #[test]
    fn paper_geometry_is_valid() {
        // 32 kB / 64 B / 4 ways = 128 sets; 512 kB / 64 B / 8 = 1024 sets.
        let m = MemSystem::new(4, CacheParams::paper());
        assert_eq!(m.cores(), 4);
    }

    #[test]
    fn line_counts_match_paper_geometry() {
        let p = CacheParams::paper();
        assert_eq!(p.l1_lines(), 512, "32 kB / 64 B = 512 lines");
        assert_eq!(p.l2_lines(), 8192, "512 kB / 64 B = 8192 lines");
        let m = MemSystem::new(2, p);
        assert_eq!(m.l1_line_count(), 512);
        assert_eq!(m.l2_line_count(), 8192);
    }

    #[test]
    fn line_flips_are_involutions() {
        let mut m = MemSystem::new(2, small());
        m.access(0, Access::DataWrite, 0x3000);
        m.access(0, Access::Fetch, 0x1000);
        m.access(1, Access::DataRead, 0x2000);
        let golden = m.clone();
        for unit in [MemSystem::UNIT_L1I, MemSystem::UNIT_L1D, MemSystem::UNIT_L2] {
            for bit in [0, 17, 31, 32, 33, 34, 39] {
                let mut faulty = golden.clone();
                faulty.flip_bit(unit, 0, 3, bit).unwrap();
                faulty.flip_bit(unit, 0, 3, bit).unwrap();
                assert_eq!(faulty, golden, "unit {unit} bit {bit}");
            }
        }
    }

    #[test]
    fn out_of_range_flips_are_rejected() {
        let mut m = MemSystem::new(2, small());
        let golden = m.clone();
        assert_eq!(m.flip_bit(9, 0, 0, 0), Err(FlipError::UnknownUnit(9)));
        assert_eq!(
            m.flip_bit(MemSystem::UNIT_L1D, 99, 0, 0),
            Err(FlipError::CoreRange { core: 99, cores: 2 })
        );
        assert_eq!(
            m.flip_bit(MemSystem::UNIT_L2, 0, 1 << 20, 0),
            Err(FlipError::LineRange {
                line: 1 << 20,
                lines: 64
            })
        );
        let mem = PhysMem::new(1 << 16);
        assert_eq!(
            m.flip_data_bit(MemSystem::UNIT_L1I, 0, 0, 0, &mem),
            Err(FlipError::UnknownUnit(MemSystem::UNIT_L1I)),
            "L1I data is the text domain's territory"
        );
        assert_eq!(
            m.flip_data_bit(MemSystem::UNIT_L1D, 0, 4096, 0, &mem),
            Err(FlipError::LineRange {
                line: 4096,
                lines: 16
            })
        );
        assert_eq!(
            m.flip_storebuf(7, 0, 0),
            Err(FlipError::CoreRange { core: 7, cores: 2 })
        );
        assert_eq!(
            m.flip_storebuf(0, 99, 0),
            Err(FlipError::EntryRange {
                entry: 99,
                entries: crate::store::STORE_BUFFER_ENTRIES
            })
        );
        assert_eq!(m, golden, "rejected flips must not change state");
    }

    #[test]
    fn state_flip_to_invalid_forces_a_miss() {
        let mut m = MemSystem::new(1, small());
        m.access(0, Access::DataRead, 0x1000);
        assert_eq!(m.access(0, Access::DataRead, 0x1000), 0, "resident");
        // Find the line and flip its state code from Exclusive (1) to
        // Invalid (3): XOR bit 33 (state bit 1 of the 2-bit code).
        let line = m.l1d[0]
            .lines
            .iter()
            .position(|l| l.tag != INVALID_TAG)
            .expect("one resident line");
        m.flip_bit(MemSystem::UNIT_L1D, 0, line, 33).unwrap();
        assert_eq!(m.l1d[0].lines[line].state, Mesi::Invalid);
        let misses = m.l1d_stats(0).misses;
        assert!(
            m.access(0, Access::DataRead, 0x1000) > 0,
            "invalidated line must miss"
        );
        assert_eq!(m.l1d_stats(0).misses, misses + 1);
    }

    #[test]
    fn l1i_flip_shows_after_the_fetch_buffer_moves_on() {
        let mut m = MemSystem::new(1, small());
        m.access(0, Access::Fetch, 0x1000);
        let line = m.l1i[0]
            .lines
            .iter()
            .position(|l| l.tag != INVALID_TAG)
            .expect("one resident line");
        m.flip_bit(MemSystem::UNIT_L1I, 0, line, 5).unwrap();
        // Same-line repeat fetch still streams from the fetch line
        // buffer — a tag-SRAM strike does not touch the buffered
        // instructions.
        let hits = m.l1i_stats(0).hits;
        assert_eq!(m.access(0, Access::Fetch, 0x1004), 0);
        assert_eq!(m.l1i_stats(0).hits, hits + 1);
        // Once fetch leaves the line and returns, the corrupted tag is
        // consulted for real and the line misses.
        m.access(0, Access::Fetch, 0x2000);
        let misses = m.l1i_stats(0).misses;
        assert!(m.access(0, Access::Fetch, 0x1000) > 0, "tag corrupted");
        assert_eq!(m.l1i_stats(0).misses, misses + 1);
    }

    #[test]
    fn tag_flip_can_create_a_phantom_hit() {
        let mut m = MemSystem::new(1, small());
        m.access(0, Access::DataRead, 0x1000);
        let line = m.l1d[0]
            .lines
            .iter()
            .position(|l| l.tag != INVALID_TAG)
            .expect("one resident line");
        // Flip tag bit 0: 0x1000's line now answers for a different
        // address in the same set (aliasing, the classic tag-SRAM
        // failure mode) and no longer for 0x1000 itself.
        m.flip_bit(MemSystem::UNIT_L1D, 0, line, 0).unwrap();
        let misses = m.l1d_stats(0).misses;
        m.access(0, Access::DataRead, 0x1000);
        assert_eq!(m.l1d_stats(0).misses, misses + 1);
    }

    // ----- value layers ---------------------------------------------------

    fn resident_l1d_slot(m: &MemSystem, core: usize) -> usize {
        m.l1d[core]
            .lines
            .iter()
            .position(|l| l.tag != INVALID_TAG)
            .expect("one resident line")
    }

    #[test]
    fn data_paths_match_access_timing_and_are_transparent_when_clean() {
        let mut mem = PhysMem::new(1 << 16);
        mem.write_u32(0x1000, 77).unwrap();
        let mut a = MemSystem::new(1, small());
        let mut b = MemSystem::new(1, small());
        let pa = a.access(0, Access::DataRead, 0x1000);
        let (pb, over) = b.data_read(0, 0x1000, 4);
        assert_eq!(pa, pb);
        assert_eq!(over, None, "clean hierarchy never overrides memory");
        let pa = a.access(0, Access::DataWrite, 0x1040);
        mem.write_u32(0x1040, 5).unwrap();
        let pb = b.data_write(0, 0x1040, 4, 5, &mut mem);
        assert_eq!(pa, pb);
        assert_eq!(a, b, "identical timing state; value layers empty");
    }

    #[test]
    fn data_flip_serves_a_corrupted_load_and_is_an_involution() {
        let mut mem = PhysMem::new(1 << 16);
        mem.write_u32(0x1000, 0xff).unwrap();
        let mut m = MemSystem::new(1, small());
        m.data_read(0, 0x1000, 4);
        let slot = resident_l1d_slot(&m, 0);
        let golden = m.clone();
        m.flip_data_bit(MemSystem::UNIT_L1D, 0, slot, 3, &mem)
            .unwrap();
        let (_, over) = m.data_read(0, 0x1000, 4);
        assert_eq!(over, Some(0xff ^ 8), "overlay serves the struck value");
        assert_eq!(mem.read_u32(0x1000).unwrap(), 0xff, "memory untouched");
        // The same flip twice dissolves the overlay entirely.
        let mut twice = golden.clone();
        twice
            .flip_data_bit(MemSystem::UNIT_L1D, 0, slot, 3, &mem)
            .unwrap();
        twice
            .flip_data_bit(MemSystem::UNIT_L1D, 0, slot, 3, &mem)
            .unwrap();
        assert_eq!(twice, golden);
        assert!(twice.overlays.is_empty());
    }

    #[test]
    fn store_over_the_struck_bytes_dissolves_the_overlay() {
        let mut mem = PhysMem::new(1 << 16);
        mem.write_u32(0x2000, 1).unwrap();
        let mut m = MemSystem::new(1, small());
        m.data_read(0, 0x2000, 4);
        let slot = resident_l1d_slot(&m, 0);
        m.flip_data_bit(MemSystem::UNIT_L1D, 0, slot, 0, &mem)
            .unwrap();
        assert!(!m.overlays.is_empty());
        // Overwrite the corrupted word: cache copy and memory re-agree.
        mem.write_u32(0x2000, 42).unwrap();
        m.data_write(0, 0x2000, 4, 42, &mut mem);
        assert!(m.overlays.is_empty(), "overlay equal to memory dissolves");
        assert_eq!(m.data_read(0, 0x2000, 4).1, None);
    }

    #[test]
    fn eviction_discards_the_struck_line() {
        let mem = PhysMem::new(1 << 16);
        let mut m = MemSystem::new(1, small());
        m.data_read(0, 0, 4);
        let slot = resident_l1d_slot(&m, 0);
        m.flip_data_bit(MemSystem::UNIT_L1D, 0, slot, 0, &mem)
            .unwrap();
        // Two more lines in the same set (8 sets, 2 ways) evict line 0
        // from the L1D; its overlay leaves with it. The L2 copy was
        // never struck, so a re-read serves memory again.
        let set_stride = 8 * 64;
        m.data_read(0, set_stride, 4);
        m.data_read(0, 2 * set_stride, 4);
        assert!(
            !m.overlays
                .contains_key(&(MemSystem::UNIT_L1D, 0, slot as u32)),
            "clean eviction discards the strike"
        );
        assert_eq!(m.data_read(0, 0, 4).1, None);
    }

    #[test]
    fn l2_strike_propagates_down_with_the_fill() {
        let mut mem = PhysMem::new(1 << 16);
        mem.write_u32(0, 10).unwrap();
        let mut m = MemSystem::new(1, small());
        m.data_read(0, 0, 4);
        // Evict the line from L1 (it stays in L2), then strike the L2
        // data copy.
        let set_stride = 8 * 64;
        m.data_read(0, set_stride, 4);
        m.data_read(0, 2 * set_stride, 4);
        let l2_slot = (0..m.l2.line_count())
            .find(|&s| m.l2.lines[s].tag != INVALID_TAG && m.l2.base_addr(s) == 0)
            .expect("line resident in L2");
        m.flip_data_bit(MemSystem::UNIT_L2, 0, l2_slot, 1, &mem)
            .unwrap();
        // Refill the L1D from the struck L2 copy: the load sees it.
        let (_, over) = m.data_read(0, 0, 4);
        assert_eq!(over, Some(10 ^ 2), "L1 fill reads the corrupted L2 data");
    }

    #[test]
    fn strike_on_an_empty_way_masks() {
        let mem = PhysMem::new(1 << 16);
        let mut m = MemSystem::new(1, small());
        let golden = m.clone();
        m.flip_data_bit(MemSystem::UNIT_L1D, 0, 0, 5, &mem).unwrap();
        assert_eq!(m, golden, "no resident data to corrupt");
    }

    #[test]
    fn store_buffer_taint_forwards_through_data_read() {
        let mut mem = PhysMem::new(1 << 16);
        mem.write_u32(0x3000, 6).unwrap();
        let mut m = MemSystem::new(1, small());
        m.data_write(0, 0x3000, 4, 6, &mut mem);
        m.flip_storebuf(0, 0, 32).unwrap(); // data bit 0 of the pending store
        let (_, over) = m.data_read(0, 0x3000, 4);
        assert_eq!(over, Some(6 ^ 1), "tainted entry forwards to the load");
        m.drain_store_buffer(0, &mut mem);
        assert_eq!(mem.read_u32(0x3000).unwrap(), 6 ^ 1, "fence commits it");
    }

    #[test]
    fn miss_ratio() {
        let s = CacheStats {
            hits: 3,
            misses: 1,
            ..Default::default()
        };
        assert!((s.miss_ratio() - 0.25).abs() < 1e-12);
        assert_eq!(CacheStats::default().miss_ratio(), 0.0);
    }
}
