//! Tag-only cache hierarchy with MESI-style coherence statistics.
//!
//! Geometry follows the paper's §3.1 platform: per-core L1I 32 kB /
//! 4-way and L1D 32 kB / 4-way, shared L2 512 kB / 8-way, 64-byte lines,
//! LRU replacement. The model is *tag-only*: it tracks which lines would
//! be resident and returns access latencies; data itself lives in
//! [`crate::PhysMem`].

/// What kind of access hits the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// Instruction fetch (L1I path).
    Fetch,
    /// Data load (L1D path).
    DataRead,
    /// Data store (L1D path, write-allocate).
    DataWrite,
}

/// Cache geometry and latency parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheParams {
    /// L1 (instruction and data) size in bytes.
    pub l1_size: u32,
    /// L1 associativity.
    pub l1_ways: u32,
    /// Shared L2 size in bytes.
    pub l2_size: u32,
    /// L2 associativity.
    pub l2_ways: u32,
    /// Cache line size in bytes.
    pub line: u32,
    /// Extra cycles for an L1 miss that hits L2.
    pub l2_hit_cycles: u32,
    /// Extra cycles for a miss that goes to memory.
    pub mem_cycles: u32,
}

impl CacheParams {
    /// The paper's configuration: L1 32 kB 4-way, L2 512 kB 8-way.
    pub fn paper() -> CacheParams {
        CacheParams {
            l1_size: 32 << 10,
            l1_ways: 4,
            l2_size: 512 << 10,
            l2_ways: 8,
            line: 64,
            l2_hit_cycles: 8,
            mem_cycles: 48,
        }
    }

    /// Number of lines in one L1 tag store (`set_count * ways`; 512 for
    /// the paper's 32 kB / 4-way geometry). This is the cache-state
    /// fault space's per-L1 extent, so it must match the slab
    /// [`MemSystem`] actually allocates.
    pub fn l1_lines(&self) -> u32 {
        (self.l1_size / self.line / self.l1_ways).max(1) * self.l1_ways
    }

    /// Number of lines in the shared L2 tag store (8192 for the paper's
    /// 512 kB / 8-way geometry).
    pub fn l2_lines(&self) -> u32 {
        (self.l2_size / self.line / self.l2_ways).max(1) * self.l2_ways
    }
}

impl Default for CacheParams {
    fn default() -> CacheParams {
        CacheParams::paper()
    }
}

/// Hit/miss and coherence counters for one cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
    /// Lines invalidated by another core's write (L1D only).
    pub invalidations: u64,
    /// Dirty lines written back on eviction or downgrade.
    pub writebacks: u64,
}

impl CacheStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss ratio in `[0, 1]`; zero when idle.
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses() as f64
        }
    }
}

/// MESI line states (the model distinguishes dirty vs clean and
/// shared vs exclusive for the coherence counters). `Invalid` never
/// arises in a fault-free run — occupancy is tracked by the
/// [`INVALID_TAG`] sentinel instead — it exists so a particle strike on
/// the 2-bit state field ([`SetAssoc::flip_line_bit`]) has somewhere to
/// land; an `Invalid` line misses on lookup like an empty way.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mesi {
    Modified,
    Exclusive,
    Shared,
    Invalid,
}

impl Mesi {
    /// The 2-bit SRAM encoding of the state field the fault model
    /// flips: M=0, E=1, S=2, I=3.
    fn code(self) -> u32 {
        match self {
            Mesi::Modified => 0,
            Mesi::Exclusive => 1,
            Mesi::Shared => 2,
            Mesi::Invalid => 3,
        }
    }

    fn from_code(code: u32) -> Mesi {
        match code & 3 {
            0 => Mesi::Modified,
            1 => Mesi::Exclusive,
            2 => Mesi::Shared,
            _ => Mesi::Invalid,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Line {
    tag: u32,
    state: Mesi,
    lru: u64,
}

/// Tag sentinel marking an empty way. Real tags are
/// `addr >> (line_bits + set_bits)` with at least one bit shifted
/// out, so they can never be `u32::MAX`.
const INVALID_TAG: u32 = u32::MAX;

/// A set-associative tag store, laid out as one dense
/// `set_count * ways` slab (set `s` owns `lines[s*ways..(s+1)*ways]`)
/// so a lookup touches a single contiguous run of 12-byte entries —
/// this sits on the interpreter's per-instruction fetch path, where
/// the previous vec-of-vecs layout cost a dependent pointer chase per
/// access.
///
/// Replacement semantics are unchanged from the vec-of-vecs model:
/// fills prefer an empty way, otherwise evict the least recently used
/// (LRU stamps come from a strictly increasing per-cache tick, so the
/// minimum is unique and the victim choice cannot depend on way
/// order).
#[derive(Debug, Clone, PartialEq, Eq)]
struct SetAssoc {
    lines: Box<[Line]>,
    ways: usize,
    set_shift: u32,
    set_mask: u32,
    tick: u64,
}

impl SetAssoc {
    fn new(size: u32, ways: u32, line: u32) -> SetAssoc {
        let set_count = (size / line / ways).max(1);
        assert!(
            set_count.is_power_of_two(),
            "set count must be a power of two"
        );
        let empty = Line {
            tag: INVALID_TAG,
            state: Mesi::Shared,
            lru: 0,
        };
        SetAssoc {
            lines: vec![empty; (set_count * ways) as usize].into_boxed_slice(),
            ways: ways as usize,
            set_shift: line.trailing_zeros(),
            set_mask: set_count - 1,
            tick: 0,
        }
    }

    fn index(&self, addr: u32) -> (usize, u32) {
        let block = addr >> self.set_shift;
        (
            (block & self.set_mask) as usize,
            block >> self.set_mask.trailing_ones(),
        )
    }

    #[inline]
    fn lookup(&mut self, addr: u32) -> Option<&mut Line> {
        self.tick += 1;
        let tick = self.tick;
        let (set, tag) = self.index(addr);
        let line = self.lines[set * self.ways..(set + 1) * self.ways]
            .iter_mut()
            .find(|l| l.tag == tag && l.state != Mesi::Invalid)?;
        line.lru = tick;
        Some(line)
    }

    /// Inserts a line, returning the evicted line if the set was full.
    fn insert(&mut self, addr: u32, state: Mesi) -> Option<Line> {
        self.tick += 1;
        let tick = self.tick;
        let (set, tag) = self.index(addr);
        let set = &mut self.lines[set * self.ways..(set + 1) * self.ways];
        let (slot, evicted) = match set.iter().position(|l| l.tag == INVALID_TAG) {
            Some(empty) => (empty, None),
            None => {
                let victim = set
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, l)| l.lru)
                    .map(|(i, _)| i)
                    .expect("non-empty set");
                (victim, Some(set[victim]))
            }
        };
        set[slot] = Line {
            tag,
            state,
            lru: tick,
        };
        evicted
    }

    fn remove(&mut self, addr: u32) -> Option<Line> {
        let (set, tag) = self.index(addr);
        let set = &mut self.lines[set * self.ways..(set + 1) * self.ways];
        let i = set
            .iter()
            .position(|l| l.tag == tag && l.state != Mesi::Invalid)?;
        let line = set[i];
        set[i] = Line {
            tag: INVALID_TAG,
            state: Mesi::Shared,
            lru: 0,
        };
        Some(line)
    }

    /// Fault hook: XORs one bit of the `line`-th tag-store entry.
    /// The 40-bit per-line layout mirrors the SRAM a strike would hit —
    /// bits 0–31 the tag, 32–33 the 2-bit MESI state code, 34–39 the
    /// low six bits of the LRU stamp. `bit` wraps at 40 (the domain's
    /// adjacent-bit modulus); out-of-range lines are ignored. Pure XOR
    /// on every field, so applying the same flip twice is the identity.
    fn flip_line_bit(&mut self, line: usize, bit: u32) {
        let Some(l) = self.lines.get_mut(line) else {
            return;
        };
        match bit % 40 {
            b @ 0..=31 => l.tag ^= 1 << b,
            b @ 32..=33 => l.state = Mesi::from_code(l.state.code() ^ (1 << (b - 32))),
            b => l.lru ^= 1 << (b - 34),
        }
    }

    /// Number of lines in this tag store.
    fn line_count(&self) -> usize {
        self.lines.len()
    }
}

/// The multicore cache hierarchy: one L1I + L1D pair per core and a
/// shared L2, with MESI bookkeeping between the L1 data caches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemSystem {
    params: CacheParams,
    l1i: Vec<SetAssoc>,
    l1d: Vec<SetAssoc>,
    l2: SetAssoc,
    l1i_stats: Vec<CacheStats>,
    l1d_stats: Vec<CacheStats>,
    l2_stats: CacheStats,
    /// Per-core line address (`addr >> line_bits`) of the most recent
    /// instruction fetch, or `u32::MAX` when unknown. Because the L1I
    /// is touched only by its own core's fetches (data snoops and
    /// invalidations act on the L1D side) and an L1I hit costs zero
    /// extra cycles, a repeat fetch to the same line can be answered
    /// without walking the tag store: the line is still resident, the
    /// answer is "hit, penalty 0", and skipping the intermediate LRU
    /// stamps cannot change any future eviction — no other L1I access
    /// interleaves with the repeats, so the line's relative recency
    /// against every other line is unchanged.
    fetch_line: Vec<u32>,
}

impl MemSystem {
    /// [`MemSystem::flip_bit`] unit selector: a per-core L1 instruction
    /// tag store.
    pub const UNIT_L1I: u32 = 0;
    /// [`MemSystem::flip_bit`] unit selector: a per-core L1 data tag
    /// store.
    pub const UNIT_L1D: u32 = 1;
    /// [`MemSystem::flip_bit`] unit selector: the shared L2 tag store.
    pub const UNIT_L2: u32 = 2;
    /// Bits per tag-store line in the cache-state fault model (32 tag +
    /// 2 MESI state + 6 LRU-stamp bits).
    pub const LINE_BITS: u32 = 40;

    /// Creates a hierarchy for `cores` cores.
    pub fn new(cores: usize, params: CacheParams) -> MemSystem {
        MemSystem {
            params,
            l1i: (0..cores)
                .map(|_| SetAssoc::new(params.l1_size, params.l1_ways, params.line))
                .collect(),
            l1d: (0..cores)
                .map(|_| SetAssoc::new(params.l1_size, params.l1_ways, params.line))
                .collect(),
            l2: SetAssoc::new(params.l2_size, params.l2_ways, params.line),
            l1i_stats: vec![CacheStats::default(); cores],
            l1d_stats: vec![CacheStats::default(); cores],
            l2_stats: CacheStats::default(),
            fetch_line: vec![u32::MAX; cores],
        }
    }

    /// Number of cores the hierarchy serves.
    pub fn cores(&self) -> usize {
        self.l1i.len()
    }

    /// The configured parameters.
    pub fn params(&self) -> CacheParams {
        self.params
    }

    /// Simulates one access by `core`, returning the extra latency in
    /// cycles beyond the L1-hit base cost (0 for an L1 hit).
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    #[inline]
    pub fn access(&mut self, core: usize, access: Access, addr: u32) -> u32 {
        match access {
            Access::Fetch => self.access_l1i(core, addr),
            Access::DataRead => self.access_l1d(core, addr, false),
            Access::DataWrite => self.access_l1d(core, addr, true),
        }
    }

    #[inline]
    fn access_l1i(&mut self, core: usize, addr: u32) -> u32 {
        // Same-line repeat fetch: resident by construction (see
        // `fetch_line`), hit with zero penalty.
        let line = addr >> self.params.line.trailing_zeros();
        if self.fetch_line[core] == line {
            self.l1i_stats[core].hits += 1;
            return 0;
        }
        self.fetch_line[core] = line;
        if self.l1i[core].lookup(addr).is_some() {
            self.l1i_stats[core].hits += 1;
            return 0;
        }
        self.l1i_stats[core].misses += 1;
        let penalty = self.access_l2(addr, false);
        self.l1i[core].insert(addr, Mesi::Shared);
        penalty
    }

    fn access_l1d(&mut self, core: usize, addr: u32, write: bool) -> u32 {
        // Hit path.
        if let Some(line) = self.l1d[core].lookup(addr) {
            self.l1d_stats[core].hits += 1;
            let upgrade = write && line.state == Mesi::Shared;
            if write {
                line.state = Mesi::Modified;
            }
            if upgrade {
                // BusUpgr: invalidate every other copy.
                self.invalidate_others(core, addr);
            }
            return 0;
        }
        self.l1d_stats[core].misses += 1;

        // Snoop other L1Ds; a Modified copy elsewhere must be written back.
        let mut shared_elsewhere = false;
        for other in 0..self.l1d.len() {
            if other == core {
                continue;
            }
            if write {
                if let Some(line) = self.l1d[other].remove(addr) {
                    self.l1d_stats[other].invalidations += 1;
                    if line.state == Mesi::Modified {
                        self.l1d_stats[other].writebacks += 1;
                    }
                }
            } else if let Some(line) = self.l1d[other].lookup(addr) {
                if line.state == Mesi::Modified {
                    self.l1d_stats[other].writebacks += 1;
                }
                line.state = Mesi::Shared;
                shared_elsewhere = true;
            }
        }

        let penalty = self.access_l2(addr, write);
        let state = if write {
            Mesi::Modified
        } else if shared_elsewhere {
            Mesi::Shared
        } else {
            Mesi::Exclusive
        };
        if let Some(evicted) = self.l1d[core].insert(addr, state) {
            if evicted.state == Mesi::Modified {
                self.l1d_stats[core].writebacks += 1;
            }
        }
        penalty
    }

    fn access_l2(&mut self, addr: u32, write: bool) -> u32 {
        if let Some(line) = self.l2.lookup(addr) {
            self.l2_stats.hits += 1;
            if write {
                line.state = Mesi::Modified;
            }
            return self.params.l2_hit_cycles;
        }
        self.l2_stats.misses += 1;
        let state = if write {
            Mesi::Modified
        } else {
            Mesi::Exclusive
        };
        if let Some(evicted) = self.l2.insert(addr, state) {
            if evicted.state == Mesi::Modified {
                self.l2_stats.writebacks += 1;
            }
        }
        self.params.l2_hit_cycles + self.params.mem_cycles
    }

    fn invalidate_others(&mut self, core: usize, addr: u32) {
        for other in 0..self.l1d.len() {
            if other != core && self.l1d[other].remove(addr).is_some() {
                self.l1d_stats[other].invalidations += 1;
            }
        }
    }

    /// Per-core L1 instruction-cache statistics.
    pub fn l1i_stats(&self, core: usize) -> CacheStats {
        self.l1i_stats[core]
    }

    /// Per-core L1 data-cache statistics.
    pub fn l1d_stats(&self, core: usize) -> CacheStats {
        self.l1d_stats[core]
    }

    /// Shared L2 statistics.
    pub fn l2_stats(&self) -> CacheStats {
        self.l2_stats
    }

    /// Lines per L1 tag store (each of L1I and L1D, per core).
    pub fn l1_line_count(&self) -> usize {
        self.l1i.first().map_or(0, SetAssoc::line_count)
    }

    /// Lines in the shared L2 tag store.
    pub fn l2_line_count(&self) -> usize {
        self.l2.line_count()
    }

    /// Fault hook: XORs one bit of a tag-store line. `unit` selects the
    /// store — [`MemSystem::UNIT_L1I`], [`MemSystem::UNIT_L1D`] or
    /// [`MemSystem::UNIT_L2`] (`core` is ignored for the shared L2) —
    /// and `bit` addresses the 40-bit line layout of
    /// `SetAssoc::flip_line_bit` (tag, MESI code, low LRU bits),
    /// wrapping at 40. Out-of-range units, cores and lines are ignored.
    ///
    /// The same-line fetch memo (`fetch_line`) is deliberately *not*
    /// reset by an L1I flip: the memo models the core's fetch line
    /// buffer, which holds the streamed instructions themselves and is
    /// untouched by a strike on the tag SRAM behind it. The corruption
    /// becomes observable at the next fetch that leaves the buffered
    /// line — the first real tag lookup — and keeping the hook pure
    /// XOR/toggle preserves the apply-twice-is-identity involution every
    /// registered fault domain guarantees.
    pub fn flip_bit(&mut self, unit: u32, core: usize, line: usize, bit: u32) {
        match unit {
            Self::UNIT_L1I => {
                if let Some(l1i) = self.l1i.get_mut(core) {
                    l1i.flip_line_bit(line, bit);
                }
            }
            Self::UNIT_L1D => {
                if let Some(l1d) = self.l1d.get_mut(core) {
                    l1d.flip_line_bit(line, bit);
                }
            }
            Self::UNIT_L2 => self.l2.flip_line_bit(line, bit),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CacheParams {
        CacheParams {
            l1_size: 1024,
            l1_ways: 2,
            l2_size: 4096,
            l2_ways: 4,
            line: 64,
            l2_hit_cycles: 8,
            mem_cycles: 40,
        }
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut m = MemSystem::new(1, small());
        assert_eq!(m.access(0, Access::DataRead, 0x1000), 48);
        assert_eq!(m.access(0, Access::DataRead, 0x1000), 0);
        assert_eq!(
            m.access(0, Access::DataRead, 0x1020),
            0,
            "same 64-byte line"
        );
        assert_eq!(m.l1d_stats(0).hits, 2);
        assert_eq!(m.l1d_stats(0).misses, 1);
    }

    #[test]
    fn l2_backs_l1_evictions() {
        let mut m = MemSystem::new(1, small());
        // L1: 1024 B / 64 B / 2 ways = 8 sets. Three lines mapping to the
        // same set evict one from L1 but it stays in L2.
        let set_stride = 8 * 64;
        m.access(0, Access::DataRead, 0);
        m.access(0, Access::DataRead, set_stride);
        m.access(0, Access::DataRead, 2 * set_stride); // evicts line 0 from L1
        let penalty = m.access(0, Access::DataRead, 0);
        assert_eq!(penalty, 8, "L1 miss, L2 hit");
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut m = MemSystem::new(1, small());
        let set_stride = 8 * 64;
        m.access(0, Access::DataRead, 0);
        m.access(0, Access::DataRead, set_stride);
        m.access(0, Access::DataRead, 0); // refresh line 0
        m.access(0, Access::DataRead, 2 * set_stride); // must evict line 1
        assert_eq!(m.access(0, Access::DataRead, 0), 0, "line 0 still resident");
    }

    #[test]
    fn write_invalidates_other_cores() {
        let mut m = MemSystem::new(2, small());
        m.access(0, Access::DataRead, 0x2000);
        m.access(1, Access::DataRead, 0x2000);
        // Core 1 writes: core 0's copy must be invalidated.
        m.access(1, Access::DataWrite, 0x2000);
        assert_eq!(m.l1d_stats(0).invalidations, 1);
        // Core 0 re-reads: that's a miss now.
        let misses_before = m.l1d_stats(0).misses;
        m.access(0, Access::DataRead, 0x2000);
        assert_eq!(m.l1d_stats(0).misses, misses_before + 1);
    }

    #[test]
    fn modified_line_written_back_when_snooped() {
        let mut m = MemSystem::new(2, small());
        m.access(0, Access::DataWrite, 0x3000);
        m.access(1, Access::DataRead, 0x3000);
        assert_eq!(m.l1d_stats(0).writebacks, 1);
    }

    #[test]
    fn fetch_uses_instruction_cache() {
        let mut m = MemSystem::new(1, small());
        m.access(0, Access::Fetch, 0x1000);
        m.access(0, Access::Fetch, 0x1000);
        assert_eq!(m.l1i_stats(0).hits, 1);
        assert_eq!(m.l1i_stats(0).misses, 1);
        assert_eq!(m.l1d_stats(0).accesses(), 0);
    }

    #[test]
    fn paper_geometry_is_valid() {
        // 32 kB / 64 B / 4 ways = 128 sets; 512 kB / 64 B / 8 = 1024 sets.
        let m = MemSystem::new(4, CacheParams::paper());
        assert_eq!(m.cores(), 4);
    }

    #[test]
    fn line_counts_match_paper_geometry() {
        let p = CacheParams::paper();
        assert_eq!(p.l1_lines(), 512, "32 kB / 64 B = 512 lines");
        assert_eq!(p.l2_lines(), 8192, "512 kB / 64 B = 8192 lines");
        let m = MemSystem::new(2, p);
        assert_eq!(m.l1_line_count(), 512);
        assert_eq!(m.l2_line_count(), 8192);
    }

    #[test]
    fn line_flips_are_involutions() {
        let mut m = MemSystem::new(2, small());
        m.access(0, Access::DataWrite, 0x3000);
        m.access(0, Access::Fetch, 0x1000);
        m.access(1, Access::DataRead, 0x2000);
        let golden = m.clone();
        for unit in [MemSystem::UNIT_L1I, MemSystem::UNIT_L1D, MemSystem::UNIT_L2] {
            for bit in [0, 17, 31, 32, 33, 34, 39] {
                let mut faulty = golden.clone();
                faulty.flip_bit(unit, 0, 3, bit);
                faulty.flip_bit(unit, 0, 3, bit);
                assert_eq!(faulty, golden, "unit {unit} bit {bit}");
            }
        }
        // Out-of-range coordinates are ignored, twice over.
        let mut faulty = golden.clone();
        faulty.flip_bit(9, 0, 0, 0);
        faulty.flip_bit(MemSystem::UNIT_L1D, 99, 0, 0);
        faulty.flip_bit(MemSystem::UNIT_L2, 0, 1 << 20, 0);
        assert_eq!(faulty, golden);
    }

    #[test]
    fn state_flip_to_invalid_forces_a_miss() {
        let mut m = MemSystem::new(1, small());
        m.access(0, Access::DataRead, 0x1000);
        assert_eq!(m.access(0, Access::DataRead, 0x1000), 0, "resident");
        // Find the line and flip its state code from Exclusive (1) to
        // Invalid (3): XOR bit 33 (state bit 1 of the 2-bit code).
        let line = m.l1d[0]
            .lines
            .iter()
            .position(|l| l.tag != INVALID_TAG)
            .expect("one resident line");
        m.flip_bit(MemSystem::UNIT_L1D, 0, line, 33);
        assert_eq!(m.l1d[0].lines[line].state, Mesi::Invalid);
        let misses = m.l1d_stats(0).misses;
        assert!(
            m.access(0, Access::DataRead, 0x1000) > 0,
            "invalidated line must miss"
        );
        assert_eq!(m.l1d_stats(0).misses, misses + 1);
    }

    #[test]
    fn l1i_flip_shows_after_the_fetch_buffer_moves_on() {
        let mut m = MemSystem::new(1, small());
        m.access(0, Access::Fetch, 0x1000);
        let line = m.l1i[0]
            .lines
            .iter()
            .position(|l| l.tag != INVALID_TAG)
            .expect("one resident line");
        m.flip_bit(MemSystem::UNIT_L1I, 0, line, 5);
        // Same-line repeat fetch still streams from the fetch line
        // buffer — a tag-SRAM strike does not touch the buffered
        // instructions.
        let hits = m.l1i_stats(0).hits;
        assert_eq!(m.access(0, Access::Fetch, 0x1004), 0);
        assert_eq!(m.l1i_stats(0).hits, hits + 1);
        // Once fetch leaves the line and returns, the corrupted tag is
        // consulted for real and the line misses.
        m.access(0, Access::Fetch, 0x2000);
        let misses = m.l1i_stats(0).misses;
        assert!(m.access(0, Access::Fetch, 0x1000) > 0, "tag corrupted");
        assert_eq!(m.l1i_stats(0).misses, misses + 1);
    }

    #[test]
    fn tag_flip_can_create_a_phantom_hit() {
        let mut m = MemSystem::new(1, small());
        m.access(0, Access::DataRead, 0x1000);
        let line = m.l1d[0]
            .lines
            .iter()
            .position(|l| l.tag != INVALID_TAG)
            .expect("one resident line");
        // Flip tag bit 0: 0x1000's line now answers for a different
        // address in the same set (aliasing, the classic tag-SRAM
        // failure mode) and no longer for 0x1000 itself.
        m.flip_bit(MemSystem::UNIT_L1D, 0, line, 0);
        let misses = m.l1d_stats(0).misses;
        m.access(0, Access::DataRead, 0x1000);
        assert_eq!(m.l1d_stats(0).misses, misses + 1);
    }

    #[test]
    fn miss_ratio() {
        let s = CacheStats {
            hits: 3,
            misses: 1,
            ..Default::default()
        };
        assert!((s.miss_ratio() - 0.25).abs() < 1e-12);
        assert_eq!(CacheStats::default().miss_ratio(), 0.0);
    }
}
