//! Tag-only cache hierarchy with MESI-style coherence statistics.
//!
//! Geometry follows the paper's §3.1 platform: per-core L1I 32 kB /
//! 4-way and L1D 32 kB / 4-way, shared L2 512 kB / 8-way, 64-byte lines,
//! LRU replacement. The model is *tag-only*: it tracks which lines would
//! be resident and returns access latencies; data itself lives in
//! [`crate::PhysMem`].

/// What kind of access hits the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// Instruction fetch (L1I path).
    Fetch,
    /// Data load (L1D path).
    DataRead,
    /// Data store (L1D path, write-allocate).
    DataWrite,
}

/// Cache geometry and latency parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheParams {
    /// L1 (instruction and data) size in bytes.
    pub l1_size: u32,
    /// L1 associativity.
    pub l1_ways: u32,
    /// Shared L2 size in bytes.
    pub l2_size: u32,
    /// L2 associativity.
    pub l2_ways: u32,
    /// Cache line size in bytes.
    pub line: u32,
    /// Extra cycles for an L1 miss that hits L2.
    pub l2_hit_cycles: u32,
    /// Extra cycles for a miss that goes to memory.
    pub mem_cycles: u32,
}

impl CacheParams {
    /// The paper's configuration: L1 32 kB 4-way, L2 512 kB 8-way.
    pub fn paper() -> CacheParams {
        CacheParams {
            l1_size: 32 << 10,
            l1_ways: 4,
            l2_size: 512 << 10,
            l2_ways: 8,
            line: 64,
            l2_hit_cycles: 8,
            mem_cycles: 48,
        }
    }
}

impl Default for CacheParams {
    fn default() -> CacheParams {
        CacheParams::paper()
    }
}

/// Hit/miss and coherence counters for one cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
    /// Lines invalidated by another core's write (L1D only).
    pub invalidations: u64,
    /// Dirty lines written back on eviction or downgrade.
    pub writebacks: u64,
}

impl CacheStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss ratio in `[0, 1]`; zero when idle.
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses() as f64
        }
    }
}

/// MESI line states (the model distinguishes dirty vs clean and
/// shared vs exclusive for the coherence counters).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mesi {
    Modified,
    Exclusive,
    Shared,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Line {
    tag: u32,
    state: Mesi,
    lru: u64,
}

/// Tag sentinel marking an empty way. Real tags are
/// `addr >> (line_bits + set_bits)` with at least one bit shifted
/// out, so they can never be `u32::MAX`.
const INVALID_TAG: u32 = u32::MAX;

/// A set-associative tag store, laid out as one dense
/// `set_count * ways` slab (set `s` owns `lines[s*ways..(s+1)*ways]`)
/// so a lookup touches a single contiguous run of 12-byte entries —
/// this sits on the interpreter's per-instruction fetch path, where
/// the previous vec-of-vecs layout cost a dependent pointer chase per
/// access.
///
/// Replacement semantics are unchanged from the vec-of-vecs model:
/// fills prefer an empty way, otherwise evict the least recently used
/// (LRU stamps come from a strictly increasing per-cache tick, so the
/// minimum is unique and the victim choice cannot depend on way
/// order).
#[derive(Debug, Clone, PartialEq, Eq)]
struct SetAssoc {
    lines: Box<[Line]>,
    ways: usize,
    set_shift: u32,
    set_mask: u32,
    tick: u64,
}

impl SetAssoc {
    fn new(size: u32, ways: u32, line: u32) -> SetAssoc {
        let set_count = (size / line / ways).max(1);
        assert!(
            set_count.is_power_of_two(),
            "set count must be a power of two"
        );
        let empty = Line {
            tag: INVALID_TAG,
            state: Mesi::Shared,
            lru: 0,
        };
        SetAssoc {
            lines: vec![empty; (set_count * ways) as usize].into_boxed_slice(),
            ways: ways as usize,
            set_shift: line.trailing_zeros(),
            set_mask: set_count - 1,
            tick: 0,
        }
    }

    fn index(&self, addr: u32) -> (usize, u32) {
        let block = addr >> self.set_shift;
        (
            (block & self.set_mask) as usize,
            block >> self.set_mask.trailing_ones(),
        )
    }

    #[inline]
    fn lookup(&mut self, addr: u32) -> Option<&mut Line> {
        self.tick += 1;
        let tick = self.tick;
        let (set, tag) = self.index(addr);
        let line = self.lines[set * self.ways..(set + 1) * self.ways]
            .iter_mut()
            .find(|l| l.tag == tag)?;
        line.lru = tick;
        Some(line)
    }

    /// Inserts a line, returning the evicted line if the set was full.
    fn insert(&mut self, addr: u32, state: Mesi) -> Option<Line> {
        self.tick += 1;
        let tick = self.tick;
        let (set, tag) = self.index(addr);
        let set = &mut self.lines[set * self.ways..(set + 1) * self.ways];
        let (slot, evicted) = match set.iter().position(|l| l.tag == INVALID_TAG) {
            Some(empty) => (empty, None),
            None => {
                let victim = set
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, l)| l.lru)
                    .map(|(i, _)| i)
                    .expect("non-empty set");
                (victim, Some(set[victim]))
            }
        };
        set[slot] = Line {
            tag,
            state,
            lru: tick,
        };
        evicted
    }

    fn remove(&mut self, addr: u32) -> Option<Line> {
        let (set, tag) = self.index(addr);
        let set = &mut self.lines[set * self.ways..(set + 1) * self.ways];
        let i = set.iter().position(|l| l.tag == tag)?;
        let line = set[i];
        set[i] = Line {
            tag: INVALID_TAG,
            state: Mesi::Shared,
            lru: 0,
        };
        Some(line)
    }
}

/// The multicore cache hierarchy: one L1I + L1D pair per core and a
/// shared L2, with MESI bookkeeping between the L1 data caches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemSystem {
    params: CacheParams,
    l1i: Vec<SetAssoc>,
    l1d: Vec<SetAssoc>,
    l2: SetAssoc,
    l1i_stats: Vec<CacheStats>,
    l1d_stats: Vec<CacheStats>,
    l2_stats: CacheStats,
    /// Per-core line address (`addr >> line_bits`) of the most recent
    /// instruction fetch, or `u32::MAX` when unknown. Because the L1I
    /// is touched only by its own core's fetches (data snoops and
    /// invalidations act on the L1D side) and an L1I hit costs zero
    /// extra cycles, a repeat fetch to the same line can be answered
    /// without walking the tag store: the line is still resident, the
    /// answer is "hit, penalty 0", and skipping the intermediate LRU
    /// stamps cannot change any future eviction — no other L1I access
    /// interleaves with the repeats, so the line's relative recency
    /// against every other line is unchanged.
    fetch_line: Vec<u32>,
}

impl MemSystem {
    /// Creates a hierarchy for `cores` cores.
    pub fn new(cores: usize, params: CacheParams) -> MemSystem {
        MemSystem {
            params,
            l1i: (0..cores)
                .map(|_| SetAssoc::new(params.l1_size, params.l1_ways, params.line))
                .collect(),
            l1d: (0..cores)
                .map(|_| SetAssoc::new(params.l1_size, params.l1_ways, params.line))
                .collect(),
            l2: SetAssoc::new(params.l2_size, params.l2_ways, params.line),
            l1i_stats: vec![CacheStats::default(); cores],
            l1d_stats: vec![CacheStats::default(); cores],
            l2_stats: CacheStats::default(),
            fetch_line: vec![u32::MAX; cores],
        }
    }

    /// Number of cores the hierarchy serves.
    pub fn cores(&self) -> usize {
        self.l1i.len()
    }

    /// The configured parameters.
    pub fn params(&self) -> CacheParams {
        self.params
    }

    /// Simulates one access by `core`, returning the extra latency in
    /// cycles beyond the L1-hit base cost (0 for an L1 hit).
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    #[inline]
    pub fn access(&mut self, core: usize, access: Access, addr: u32) -> u32 {
        match access {
            Access::Fetch => self.access_l1i(core, addr),
            Access::DataRead => self.access_l1d(core, addr, false),
            Access::DataWrite => self.access_l1d(core, addr, true),
        }
    }

    #[inline]
    fn access_l1i(&mut self, core: usize, addr: u32) -> u32 {
        // Same-line repeat fetch: resident by construction (see
        // `fetch_line`), hit with zero penalty.
        let line = addr >> self.params.line.trailing_zeros();
        if self.fetch_line[core] == line {
            self.l1i_stats[core].hits += 1;
            return 0;
        }
        self.fetch_line[core] = line;
        if self.l1i[core].lookup(addr).is_some() {
            self.l1i_stats[core].hits += 1;
            return 0;
        }
        self.l1i_stats[core].misses += 1;
        let penalty = self.access_l2(addr, false);
        self.l1i[core].insert(addr, Mesi::Shared);
        penalty
    }

    fn access_l1d(&mut self, core: usize, addr: u32, write: bool) -> u32 {
        // Hit path.
        if let Some(line) = self.l1d[core].lookup(addr) {
            self.l1d_stats[core].hits += 1;
            let upgrade = write && line.state == Mesi::Shared;
            if write {
                line.state = Mesi::Modified;
            }
            if upgrade {
                // BusUpgr: invalidate every other copy.
                self.invalidate_others(core, addr);
            }
            return 0;
        }
        self.l1d_stats[core].misses += 1;

        // Snoop other L1Ds; a Modified copy elsewhere must be written back.
        let mut shared_elsewhere = false;
        for other in 0..self.l1d.len() {
            if other == core {
                continue;
            }
            if write {
                if let Some(line) = self.l1d[other].remove(addr) {
                    self.l1d_stats[other].invalidations += 1;
                    if line.state == Mesi::Modified {
                        self.l1d_stats[other].writebacks += 1;
                    }
                }
            } else if let Some(line) = self.l1d[other].lookup(addr) {
                if line.state == Mesi::Modified {
                    self.l1d_stats[other].writebacks += 1;
                }
                line.state = Mesi::Shared;
                shared_elsewhere = true;
            }
        }

        let penalty = self.access_l2(addr, write);
        let state = if write {
            Mesi::Modified
        } else if shared_elsewhere {
            Mesi::Shared
        } else {
            Mesi::Exclusive
        };
        if let Some(evicted) = self.l1d[core].insert(addr, state) {
            if evicted.state == Mesi::Modified {
                self.l1d_stats[core].writebacks += 1;
            }
        }
        penalty
    }

    fn access_l2(&mut self, addr: u32, write: bool) -> u32 {
        if let Some(line) = self.l2.lookup(addr) {
            self.l2_stats.hits += 1;
            if write {
                line.state = Mesi::Modified;
            }
            return self.params.l2_hit_cycles;
        }
        self.l2_stats.misses += 1;
        let state = if write {
            Mesi::Modified
        } else {
            Mesi::Exclusive
        };
        if let Some(evicted) = self.l2.insert(addr, state) {
            if evicted.state == Mesi::Modified {
                self.l2_stats.writebacks += 1;
            }
        }
        self.params.l2_hit_cycles + self.params.mem_cycles
    }

    fn invalidate_others(&mut self, core: usize, addr: u32) {
        for other in 0..self.l1d.len() {
            if other != core && self.l1d[other].remove(addr).is_some() {
                self.l1d_stats[other].invalidations += 1;
            }
        }
    }

    /// Per-core L1 instruction-cache statistics.
    pub fn l1i_stats(&self, core: usize) -> CacheStats {
        self.l1i_stats[core]
    }

    /// Per-core L1 data-cache statistics.
    pub fn l1d_stats(&self, core: usize) -> CacheStats {
        self.l1d_stats[core]
    }

    /// Shared L2 statistics.
    pub fn l2_stats(&self) -> CacheStats {
        self.l2_stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CacheParams {
        CacheParams {
            l1_size: 1024,
            l1_ways: 2,
            l2_size: 4096,
            l2_ways: 4,
            line: 64,
            l2_hit_cycles: 8,
            mem_cycles: 40,
        }
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut m = MemSystem::new(1, small());
        assert_eq!(m.access(0, Access::DataRead, 0x1000), 48);
        assert_eq!(m.access(0, Access::DataRead, 0x1000), 0);
        assert_eq!(
            m.access(0, Access::DataRead, 0x1020),
            0,
            "same 64-byte line"
        );
        assert_eq!(m.l1d_stats(0).hits, 2);
        assert_eq!(m.l1d_stats(0).misses, 1);
    }

    #[test]
    fn l2_backs_l1_evictions() {
        let mut m = MemSystem::new(1, small());
        // L1: 1024 B / 64 B / 2 ways = 8 sets. Three lines mapping to the
        // same set evict one from L1 but it stays in L2.
        let set_stride = 8 * 64;
        m.access(0, Access::DataRead, 0);
        m.access(0, Access::DataRead, set_stride);
        m.access(0, Access::DataRead, 2 * set_stride); // evicts line 0 from L1
        let penalty = m.access(0, Access::DataRead, 0);
        assert_eq!(penalty, 8, "L1 miss, L2 hit");
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut m = MemSystem::new(1, small());
        let set_stride = 8 * 64;
        m.access(0, Access::DataRead, 0);
        m.access(0, Access::DataRead, set_stride);
        m.access(0, Access::DataRead, 0); // refresh line 0
        m.access(0, Access::DataRead, 2 * set_stride); // must evict line 1
        assert_eq!(m.access(0, Access::DataRead, 0), 0, "line 0 still resident");
    }

    #[test]
    fn write_invalidates_other_cores() {
        let mut m = MemSystem::new(2, small());
        m.access(0, Access::DataRead, 0x2000);
        m.access(1, Access::DataRead, 0x2000);
        // Core 1 writes: core 0's copy must be invalidated.
        m.access(1, Access::DataWrite, 0x2000);
        assert_eq!(m.l1d_stats(0).invalidations, 1);
        // Core 0 re-reads: that's a miss now.
        let misses_before = m.l1d_stats(0).misses;
        m.access(0, Access::DataRead, 0x2000);
        assert_eq!(m.l1d_stats(0).misses, misses_before + 1);
    }

    #[test]
    fn modified_line_written_back_when_snooped() {
        let mut m = MemSystem::new(2, small());
        m.access(0, Access::DataWrite, 0x3000);
        m.access(1, Access::DataRead, 0x3000);
        assert_eq!(m.l1d_stats(0).writebacks, 1);
    }

    #[test]
    fn fetch_uses_instruction_cache() {
        let mut m = MemSystem::new(1, small());
        m.access(0, Access::Fetch, 0x1000);
        m.access(0, Access::Fetch, 0x1000);
        assert_eq!(m.l1i_stats(0).hits, 1);
        assert_eq!(m.l1i_stats(0).misses, 1);
        assert_eq!(m.l1d_stats(0).accesses(), 0);
    }

    #[test]
    fn paper_geometry_is_valid() {
        // 32 kB / 64 B / 4 ways = 128 sets; 512 kB / 64 B / 8 = 1024 sets.
        let m = MemSystem::new(4, CacheParams::paper());
        assert_eq!(m.cores(), 4);
    }

    #[test]
    fn miss_ratio() {
        let s = CacheStats {
            hits: 3,
            misses: 1,
            ..Default::default()
        };
        assert!((s.miss_ratio() - 0.25).abs() < 1e-12);
        assert_eq!(CacheStats::default().miss_ratio(), 0.0);
    }
}
