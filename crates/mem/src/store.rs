//! Per-core store buffer: a bounded FIFO of pending stores between the
//! core and its L1D, with store-to-load forwarding — the uncore
//! structure Cho et al. identify as a dominant SDC source.
//!
//! ## Shadow-ring + diff-overlay design
//!
//! The functional memory model is write-through: every store lands in
//! [`crate::PhysMem`] the cycle it executes, which is what keeps golden
//! runs (and every pre-existing fault domain's sweep database)
//! byte-identical with the buffer present. The buffer itself is split
//! in two:
//!
//! * a **shadow ring** of the last [`STORE_BUFFER_ENTRIES`] stores
//!   (address, width, data, valid) — pure bookkeeping that is pushed on
//!   every store but, on its own, never influences execution: under
//!   write-through, the newest ring match for an address necessarily
//!   holds the same value memory does;
//! * a per-entry **XOR diff overlay** — the fault state. A store-buffer
//!   strike ([`StoreBuffer::flip`]) XORs into the diff, never the
//!   shadow. While every diff is zero the buffer is *value-transparent*
//!   and [`StoreBuffer::eq`] compares equal to any other untainted
//!   buffer regardless of shadow history, so checkpoint reconvergence
//!   and resume equality for the legacy domains are untouched.
//!
//! Once an entry carries a nonzero diff the buffer is *tainted*:
//! matching loads forward the corrupted (shadow ⊕ diff) value, and the
//! corrupted entry is eventually **drained** — written over memory — at
//! a fence (SVC entry, halt, atomic) or when the ring slot is reused.
//! Drains visit slots in a deterministic order (FIFO for the full
//! drain, the overwritten slot for the capacity drain) and only touch
//! memory for diff-carrying entries, so an untainted run never writes.

use crate::phys::PhysMem;

/// Entries per core in the store buffer (an 8-deep FIFO, the common
/// depth of the embedded cores the paper's platform models).
pub const STORE_BUFFER_ENTRIES: usize = 8;

/// Bits per store-buffer entry in the fault model: 32 address + 64
/// data + 1 valid. The domain's MBU wrap modulus, so an adjacent-bit
/// burst never crosses an entry boundary.
pub const STORE_ENTRY_BITS: u32 = 97;

/// One architectural (shadow) entry: the store as the core issued it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct StoreEntry {
    addr: u32,
    /// Store width in bytes (1, 4 or 8); 0 marks a never-used slot.
    len: u8,
    valid: bool,
    data: u64,
}

/// The XOR fault overlay for one entry. All-zero means "no strike".
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct EntryDiff {
    addr: u32,
    data: u64,
    valid: bool,
}

impl EntryDiff {
    fn is_zero(self) -> bool {
        self.addr == 0 && self.data == 0 && !self.valid
    }
}

/// A per-core store buffer (see the module docs for the design).
#[derive(Debug, Clone)]
pub struct StoreBuffer {
    entries: [StoreEntry; STORE_BUFFER_ENTRIES],
    diff: [EntryDiff; STORE_BUFFER_ENTRIES],
    /// Next push slot; `head - 1` is the newest entry.
    head: usize,
    /// Cached `diff.iter().any(|d| !d.is_zero())`, checked on the store
    /// hot path.
    tainted: bool,
}

/// Equality deliberately covers only the fault overlay. The shadow ring
/// is execution *history* — two runs that reconverge architecturally
/// can disagree on the last eight stores they issued — and under
/// write-through an untainted shadow never influences any future value
/// or cycle, so comparing it would break checkpoint-reconvergence
/// pruning (and with it byte-identity of the legacy domains' sweep
/// databases) for no semantic gain.
impl PartialEq for StoreBuffer {
    fn eq(&self, other: &StoreBuffer) -> bool {
        self.diff == other.diff
    }
}

impl Eq for StoreBuffer {}

impl Default for StoreBuffer {
    fn default() -> StoreBuffer {
        StoreBuffer {
            entries: [StoreEntry::default(); STORE_BUFFER_ENTRIES],
            diff: [EntryDiff::default(); STORE_BUFFER_ENTRIES],
            head: 0,
            tainted: false,
        }
    }
}

fn width_mask(len: u8) -> u64 {
    match len {
        1 => 0xff,
        4 => 0xffff_ffff,
        _ => u64::MAX,
    }
}

impl StoreBuffer {
    /// True when any entry carries a nonzero diff (loads must consult
    /// [`StoreBuffer::forward`], fences must drain).
    #[inline]
    pub fn is_tainted(&self) -> bool {
        self.tainted
    }

    /// Records a store into the ring. The oldest slot is recycled; if a
    /// strike left it diff-carrying, it drains to memory first (the
    /// buffer is full, the entry retires) — that is the *capacity
    /// drain*, and it happens in issue order by construction.
    #[inline]
    pub fn push(&mut self, addr: u32, len: u8, data: u64, mem: &mut PhysMem) {
        let slot = self.head;
        self.head = (self.head + 1) % STORE_BUFFER_ENTRIES;
        if self.tainted && !self.diff[slot].is_zero() {
            self.drain_slot(slot, mem);
        }
        self.entries[slot] = StoreEntry {
            addr,
            len,
            valid: true,
            data: data & width_mask(len),
        };
    }

    /// Store-to-load forwarding: the youngest effective entry (shadow ⊕
    /// diff) that is valid and matches `addr` exactly at width `len`
    /// supplies the load's value. Partial or mixed-width overlap falls
    /// through to memory — a modelling simplification that is exact for
    /// the untainted case (memory already holds every pushed value) and
    /// conservative for the tainted one.
    ///
    /// Only worth calling when [`StoreBuffer::is_tainted`]: an
    /// untainted forward always equals the memory value.
    pub fn forward(&self, addr: u32, len: u8) -> Option<u64> {
        for i in 0..STORE_BUFFER_ENTRIES {
            let idx = (self.head + STORE_BUFFER_ENTRIES - 1 - i) % STORE_BUFFER_ENTRIES;
            let (e, d) = (self.entries[idx], self.diff[idx]);
            if (e.valid ^ d.valid) && e.len == len && (e.addr ^ d.addr) == addr {
                return Some((e.data ^ d.data) & width_mask(len));
            }
        }
        None
    }

    /// Drains every diff-carrying entry to memory, oldest first, and
    /// clears the overlay. Called at fences (SVC entry, halt, atomics):
    /// the buffer architecturally empties, so a corrupted in-flight
    /// store commits over the write-through value. A no-op on untainted
    /// buffers — legacy runs never reach memory through here.
    pub fn drain_all(&mut self, mem: &mut PhysMem) {
        if !self.tainted {
            return;
        }
        for i in 0..STORE_BUFFER_ENTRIES {
            let idx = (self.head + i) % STORE_BUFFER_ENTRIES;
            if !self.diff[idx].is_zero() {
                self.drain_slot(idx, mem);
            }
        }
    }

    /// Writes one effective entry to memory and clears its diff. An
    /// address strike can make the write unaligned or out of range; the
    /// memory controller drops it (`Err` ignored), deterministically.
    fn drain_slot(&mut self, slot: usize, mem: &mut PhysMem) {
        let (e, d) = (self.entries[slot], self.diff[slot]);
        if (e.valid ^ d.valid) && e.len != 0 {
            let addr = e.addr ^ d.addr;
            let data = (e.data ^ d.data) & width_mask(e.len);
            let _ = match e.len {
                1 => mem.write_u8(addr, data as u8),
                4 => mem.write_u32(addr, data as u32),
                _ => mem.write_u64(addr, data),
            };
        }
        self.diff[slot] = EntryDiff::default();
        self.tainted = self.diff.iter().any(|d| !d.is_zero());
    }

    /// Fault hook: XORs one bit of `entry`'s SRAM payload into the diff
    /// overlay. `bit` wraps at [`STORE_ENTRY_BITS`] — bits 0–31 the
    /// address, 32–95 the data word, 96 the valid bit — so an MBU burst
    /// stays inside the struck entry. Pure XOR, hence an involution:
    /// the same flip twice restores an all-zero diff and the buffer
    /// compares equal to its pre-fault self.
    pub fn flip(&mut self, entry: usize, bit: u32) {
        let d = &mut self.diff[entry % STORE_BUFFER_ENTRIES];
        match bit % STORE_ENTRY_BITS {
            b @ 0..=31 => d.addr ^= 1 << b,
            b @ 32..=95 => d.data ^= 1 << (b - 32),
            _ => d.valid = !d.valid,
        }
        self.tainted = self.diff.iter().any(|d| !d.is_zero());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> PhysMem {
        PhysMem::new(1 << 16)
    }

    #[test]
    fn untainted_buffer_never_writes_memory_and_compares_equal() {
        let mut m = mem();
        let mut sb = StoreBuffer::default();
        for i in 0..20u32 {
            m.write_u32(i * 4, i).unwrap();
            sb.push(i * 4, 4, u64::from(i), &mut m);
        }
        assert!(!sb.is_tainted());
        let before = (0..20u32)
            .map(|i| m.read_u32(i * 4).unwrap())
            .collect::<Vec<_>>();
        sb.drain_all(&mut m);
        let after = (0..20u32)
            .map(|i| m.read_u32(i * 4).unwrap())
            .collect::<Vec<_>>();
        assert_eq!(before, after);
        // History-blind equality: a fresh buffer equals a used one.
        assert_eq!(sb, StoreBuffer::default());
    }

    #[test]
    fn untainted_forward_matches_memory() {
        let mut m = mem();
        let mut sb = StoreBuffer::default();
        m.write_u64(0x100, 0xdead_beef_cafe_f00d).unwrap();
        sb.push(0x100, 8, 0xdead_beef_cafe_f00d, &mut m);
        assert_eq!(sb.forward(0x100, 8), Some(0xdead_beef_cafe_f00d));
        assert_eq!(sb.forward(0x100, 4), None, "width mismatch falls through");
        assert_eq!(sb.forward(0x108, 8), None);
    }

    #[test]
    fn newest_matching_store_wins() {
        let mut m = mem();
        let mut sb = StoreBuffer::default();
        sb.push(0x40, 4, 1, &mut m);
        sb.push(0x40, 4, 2, &mut m);
        assert_eq!(sb.forward(0x40, 4), Some(2));
    }

    #[test]
    fn data_flip_forwards_and_drains_the_corrupted_value() {
        let mut m = mem();
        let mut sb = StoreBuffer::default();
        m.write_u32(0x80, 5).unwrap();
        sb.push(0x80, 4, 5, &mut m);
        // Entry 0 holds the store; flip data bit 1 (layout bit 33).
        sb.flip(0, 33);
        assert!(sb.is_tainted());
        assert_eq!(sb.forward(0x80, 4), Some(5 ^ 2));
        sb.drain_all(&mut m);
        assert_eq!(
            m.read_u32(0x80).unwrap(),
            5 ^ 2,
            "drain commits the corruption"
        );
        assert!(!sb.is_tainted());
    }

    #[test]
    fn capacity_push_drains_the_recycled_slot() {
        let mut m = mem();
        let mut sb = StoreBuffer::default();
        m.write_u32(0, 9).unwrap();
        sb.push(0, 4, 9, &mut m);
        sb.flip(0, 32); // corrupt the pending store's data bit 0
        for i in 1..=STORE_BUFFER_ENTRIES as u32 {
            sb.push(0x1000 + i * 4, 4, 0, &mut m);
        }
        assert!(!sb.is_tainted(), "recycling slot 0 drained its diff");
        assert_eq!(m.read_u32(0).unwrap(), 9 ^ 1);
    }

    #[test]
    fn address_flip_redirects_the_drain_and_oor_is_dropped() {
        let mut m = mem();
        let mut sb = StoreBuffer::default();
        m.write_u32(0x200, 7).unwrap();
        sb.push(0x200, 4, 7, &mut m);
        sb.flip(0, 10); // addr ^= 0x400 -> 0x600
        sb.drain_all(&mut m);
        assert_eq!(m.read_u32(0x200).unwrap(), 7, "write-through copy intact");
        assert_eq!(
            m.read_u32(0x600).unwrap(),
            7,
            "drain lands at the struck address"
        );
        // A flip past the memory bound: the drain write is dropped.
        let mut sb = StoreBuffer::default();
        sb.push(0x200, 4, 7, &mut m);
        sb.flip(0, 31);
        sb.drain_all(&mut m);
        assert!(!sb.is_tainted());
    }

    #[test]
    fn valid_flip_masks_the_entry() {
        let mut m = mem();
        let mut sb = StoreBuffer::default();
        m.write_u32(0x300, 3).unwrap();
        sb.push(0x300, 4, 3, &mut m);
        sb.flip(0, 96);
        assert_eq!(sb.forward(0x300, 4), None, "valid 1->0: no forward");
        sb.drain_all(&mut m);
        assert_eq!(m.read_u32(0x300).unwrap(), 3, "nothing drains");
    }

    #[test]
    fn every_flip_is_an_involution() {
        let mut m = mem();
        let mut sb = StoreBuffer::default();
        for i in 0..3u32 {
            sb.push(i * 8, 8, u64::from(i) * 0x1111, &mut m);
        }
        let golden = sb.clone();
        for entry in 0..STORE_BUFFER_ENTRIES {
            for bit in [0, 31, 32, 63, 95, 96, 100] {
                sb.flip(entry, bit);
                sb.flip(entry, bit);
                assert_eq!(sb, golden, "entry {entry} bit {bit}");
                assert!(!sb.is_tainted());
            }
        }
    }
}
