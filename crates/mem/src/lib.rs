//! # fracas-mem — memory subsystem models
//!
//! Provides the three memory-side components of the FRACAS machine model:
//!
//! * [`PhysMem`] — the flat physical byte store (little-endian, bounds
//!   checked).
//! * [`PermissionMap`] — per-*process* page permissions over the shared
//!   physical space; permission violations become the segmentation faults
//!   that the paper's UT (unexpected-termination) class originates from.
//! * [`MemSystem`] — the cache hierarchy of the paper's §3.1 platform:
//!   per-core L1I 32 kB 4-way and L1D 32 kB 4-way, a shared L2 512 kB
//!   8-way, LRU replacement and MESI-style coherence between the L1 data
//!   caches. The hierarchy is *tag-only*: it produces timing and
//!   statistics while data functionally lives in [`PhysMem`].
//!
//! ## Example
//!
//! ```
//! use fracas_mem::{CacheParams, MemSystem, PhysMem, Access};
//!
//! let mut mem = PhysMem::new(1 << 20);
//! mem.write_u32(0x100, 0xdead_beef).unwrap();
//! assert_eq!(mem.read_u32(0x100).unwrap(), 0xdead_beef);
//!
//! let mut caches = MemSystem::new(2, CacheParams::default());
//! let cold = caches.access(0, Access::DataRead, 0x100);
//! let warm = caches.access(0, Access::DataRead, 0x100);
//! assert!(cold > warm);
//! ```

mod cache;
mod perm;
mod phys;

pub use cache::{Access, CacheParams, CacheStats, MemSystem};
pub use perm::{AccessKind, PermissionMap, Perms, PAGE_SIZE};
pub use phys::{MemError, MemSnapshot, PageSet, PhysMem};

/// Default physical memory size (64 MiB).
pub const DEFAULT_MEM_SIZE: u32 = 64 << 20;
