//! # fracas-mem — memory subsystem models
//!
//! Provides the three memory-side components of the FRACAS machine model:
//!
//! * [`PhysMem`] — the flat physical byte store (little-endian, bounds
//!   checked).
//! * [`PermissionMap`] — per-*process* page permissions over the shared
//!   physical space; permission violations become the segmentation faults
//!   that the paper's UT (unexpected-termination) class originates from.
//! * [`MemSystem`] — the cache hierarchy of the paper's §3.1 platform:
//!   per-core L1I 32 kB 4-way and L1D 32 kB 4-way, a shared L2 512 kB
//!   8-way, LRU replacement and MESI-style coherence between the L1 data
//!   caches. Functionally the hierarchy is write-through — it produces
//!   timing and statistics while data lives in [`PhysMem`] — but it
//!   carries two value-bearing fault layers: per-core [`StoreBuffer`]s
//!   (pending stores with store-to-load forwarding) and lazy per-line
//!   data overlays, so store-buffer and cache-data strikes can serve
//!   corrupted values the way real uncore SRAM upsets do.
//!
//! ## Example
//!
//! ```
//! use fracas_mem::{CacheParams, MemSystem, PhysMem, Access};
//!
//! let mut mem = PhysMem::new(1 << 20);
//! mem.write_u32(0x100, 0xdead_beef).unwrap();
//! assert_eq!(mem.read_u32(0x100).unwrap(), 0xdead_beef);
//!
//! let mut caches = MemSystem::new(2, CacheParams::default());
//! let cold = caches.access(0, Access::DataRead, 0x100);
//! let warm = caches.access(0, Access::DataRead, 0x100);
//! assert!(cold > warm);
//! ```

mod cache;
mod perm;
mod phys;
mod store;

pub use cache::{Access, CacheParams, CacheStats, FlipError, MemSystem};
pub use perm::{AccessKind, PermissionMap, Perms, PAGE_SIZE};
pub use phys::{MemError, MemSnapshot, PageSet, PhysMem};
pub use store::{StoreBuffer, STORE_BUFFER_ENTRIES, STORE_ENTRY_BITS};

/// Default physical memory size (64 MiB).
pub const DEFAULT_MEM_SIZE: u32 = 64 << 20;
