//! Per-process page permissions.

use crate::MemError;
use std::fmt;

/// Page size in bytes (4 KiB, as on the paper's Linux/ARM platforms).
pub const PAGE_SIZE: u32 = 4096;

/// Page permission bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Perms {
    /// Readable.
    pub read: bool,
    /// Writable.
    pub write: bool,
    /// Executable.
    pub exec: bool,
}

impl Perms {
    /// No access (unmapped).
    pub const NONE: Perms = Perms {
        read: false,
        write: false,
        exec: false,
    };
    /// Read-only data.
    pub const R: Perms = Perms {
        read: true,
        write: false,
        exec: false,
    };
    /// Read-write data.
    pub const RW: Perms = Perms {
        read: true,
        write: true,
        exec: false,
    };
    /// Read-execute text.
    pub const RX: Perms = Perms {
        read: true,
        write: false,
        exec: true,
    };

    /// Whether these permissions allow the given access kind.
    pub fn allows(self, kind: AccessKind) -> bool {
        match kind {
            AccessKind::Read => self.read,
            AccessKind::Write => self.write,
            AccessKind::Execute => self.exec,
        }
    }
}

/// What a memory access attempts to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// A data load.
    Read,
    /// A data store.
    Write,
    /// An instruction fetch.
    Execute,
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AccessKind::Read => "read",
            AccessKind::Write => "write",
            AccessKind::Execute => "execute",
        })
    }
}

/// A process's view of the physical address space: per-page permissions.
///
/// Pages default to [`Perms::NONE`]; the kernel maps a process's text,
/// data, heap and stack regions. Any access outside mapped regions (e.g.
/// through a register corrupted by a bit flip) produces a
/// [`MemError::Protection`] fault, which the kernel delivers as a
/// segmentation fault — the UT channel of the paper's §4.1.4.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PermissionMap {
    pages: Vec<Perms>,
}

impl PermissionMap {
    /// Creates an all-unmapped permission map covering `mem_size` bytes.
    pub fn new(mem_size: u32) -> PermissionMap {
        let n = mem_size.div_ceil(PAGE_SIZE);
        PermissionMap {
            pages: vec![Perms::NONE; n as usize],
        }
    }

    /// Grants `perms` to every page overlapping `[start, start + len)`.
    ///
    /// Ranges are rounded outward to page boundaries. Out-of-range pages
    /// are ignored (they remain unmapped and will fault on access).
    pub fn map_range(&mut self, start: u32, len: u32, perms: Perms) {
        if len == 0 {
            return;
        }
        let page_count = self.pages.len();
        if page_count == 0 {
            return;
        }
        let first = ((start / PAGE_SIZE) as usize).min(page_count);
        let last = (((u64::from(start) + u64::from(len) - 1) / u64::from(PAGE_SIZE)) as usize)
            .min(page_count - 1);
        if first > last {
            return;
        }
        for page in &mut self.pages[first..=last] {
            *page = perms;
        }
    }

    /// Removes all access to the pages overlapping the range.
    pub fn unmap_range(&mut self, start: u32, len: u32) {
        self.map_range(start, len, Perms::NONE);
    }

    /// Number of pages the map covers.
    pub fn page_count(&self) -> u32 {
        self.pages.len() as u32
    }

    /// Fault hook: toggles one permission bit of `page` — the
    /// kernel-control fault model's view of a page-table entry. `bit`
    /// selects read (0), write (1) or execute (2) and wraps at 3 (the
    /// domain's adjacent-bit modulus); out-of-range pages are ignored.
    /// A pure toggle, so applying the same flip twice is the identity.
    pub fn flip_page_bit(&mut self, page: u32, bit: u32) {
        let Some(p) = self.pages.get_mut(page as usize) else {
            return;
        };
        match bit % 3 {
            0 => p.read = !p.read,
            1 => p.write = !p.write,
            _ => p.exec = !p.exec,
        }
    }

    /// The permissions of the page containing `addr`.
    pub fn perms_at(&self, addr: u32) -> Perms {
        self.pages
            .get((addr / PAGE_SIZE) as usize)
            .copied()
            .unwrap_or(Perms::NONE)
    }

    /// Checks an access of `len` bytes at `addr`.
    ///
    /// # Errors
    ///
    /// [`MemError::Protection`] naming the faulting address if any page
    /// in the range denies the access.
    #[inline]
    pub fn check(&self, addr: u32, len: u32, kind: AccessKind) -> Result<(), MemError> {
        let end = u64::from(addr) + u64::from(len.max(1)) - 1;
        // Fast path: the access is contained in one page (every fetch
        // and almost every data access — straddles only arise from
        // fault-corrupted addresses).
        let first = (addr / PAGE_SIZE) as usize;
        if end < (first as u64 + 1) * u64::from(PAGE_SIZE) {
            let perms = self.pages.get(first).copied().unwrap_or(Perms::NONE);
            if perms.allows(kind) {
                return Ok(());
            }
            return Err(MemError::Protection { addr, kind });
        }
        self.check_slow(addr, end, kind)
    }

    /// Page-walking check for accesses that straddle a page boundary.
    fn check_slow(&self, addr: u32, end: u64, kind: AccessKind) -> Result<(), MemError> {
        let mut page_addr = u64::from(addr / PAGE_SIZE) * u64::from(PAGE_SIZE);
        while page_addr <= end {
            let a = page_addr.min(u64::from(u32::MAX)) as u32;
            if !self.perms_at(a).allows(kind) {
                return Err(MemError::Protection {
                    addr: addr.max(a),
                    kind,
                });
            }
            page_addr += u64::from(PAGE_SIZE);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unmapped_by_default() {
        let map = PermissionMap::new(1 << 20);
        assert!(map.check(0, 4, AccessKind::Read).is_err());
        assert!(map.check(0x8_0000, 4, AccessKind::Write).is_err());
    }

    #[test]
    fn mapped_ranges_allow_matching_access() {
        let mut map = PermissionMap::new(1 << 20);
        map.map_range(0x1000, 0x2000, Perms::RX);
        map.map_range(0x10_000, 0x1000, Perms::RW);
        assert!(map.check(0x1000, 4, AccessKind::Execute).is_ok());
        assert!(map.check(0x1000, 4, AccessKind::Read).is_ok());
        assert!(map.check(0x1000, 4, AccessKind::Write).is_err());
        assert!(map.check(0x10_000, 8, AccessKind::Write).is_ok());
        assert!(map.check(0x10_000, 8, AccessKind::Execute).is_err());
    }

    #[test]
    fn range_rounding_covers_partial_pages() {
        let mut map = PermissionMap::new(1 << 20);
        // Maps only 16 bytes, but the whole page becomes accessible
        // (page-granular protection, as in a real MMU).
        map.map_range(0x3010, 16, Perms::RW);
        assert!(map.check(0x3000, 4, AccessKind::Read).is_ok());
        assert!(map.check(0x3ffc, 4, AccessKind::Read).is_ok());
        assert!(map.check(0x4000, 4, AccessKind::Read).is_err());
    }

    #[test]
    fn straddling_access_needs_both_pages() {
        let mut map = PermissionMap::new(1 << 20);
        map.map_range(0x1000, PAGE_SIZE, Perms::RW);
        // 8-byte access starting at the last 4 bytes of the mapped page.
        assert!(map.check(0x1ffc, 8, AccessKind::Read).is_err());
        map.map_range(0x2000, PAGE_SIZE, Perms::RW);
        assert!(map.check(0x1ffc, 8, AccessKind::Read).is_ok());
    }

    #[test]
    fn unmap_revokes() {
        let mut map = PermissionMap::new(1 << 20);
        map.map_range(0x1000, 0x1000, Perms::RW);
        assert!(map.check(0x1800, 4, AccessKind::Read).is_ok());
        map.unmap_range(0x1000, 0x1000);
        assert!(map.check(0x1800, 4, AccessKind::Read).is_err());
    }

    #[test]
    fn page_bit_flips_toggle_and_invert() {
        let mut map = PermissionMap::new(1 << 20);
        map.map_range(0x1000, PAGE_SIZE, Perms::RX);
        // Flip the write bit of page 1: RX becomes RWX.
        map.flip_page_bit(1, 1);
        assert!(map.check(0x1000, 4, AccessKind::Write).is_ok());
        // Flip the exec bit (bit 5 wraps onto 2): RWX becomes RW.
        map.flip_page_bit(1, 5);
        assert!(map.check(0x1000, 4, AccessKind::Execute).is_err());
        // Involution: undoing both flips restores RX exactly.
        map.flip_page_bit(1, 1);
        map.flip_page_bit(1, 2);
        assert_eq!(map.perms_at(0x1000), Perms::RX);
        // Out-of-range pages are ignored.
        let before = map.clone();
        map.flip_page_bit(1 << 20, 0);
        assert_eq!(map, before);
    }

    #[test]
    fn page_count_covers_the_address_space() {
        assert_eq!(PermissionMap::new(1 << 20).page_count(), 256);
        assert_eq!(PermissionMap::new(PAGE_SIZE + 1).page_count(), 2);
    }

    #[test]
    fn out_of_range_addresses_fault() {
        let map = PermissionMap::new(1 << 20);
        assert!(map.check(u32::MAX - 8, 4, AccessKind::Read).is_err());
    }
}
