//! Flat physical memory.

use std::error::Error;
use std::fmt;

/// A memory access failure, carrying the faulting address.
///
/// These are delivered by the kernel model as segmentation faults /
/// alignment traps, producing the paper's *Unexpected Termination* class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemError {
    /// The access falls outside physical memory.
    OutOfRange {
        /// Faulting byte address.
        addr: u32,
        /// Access size in bytes.
        len: u32,
    },
    /// The access is not naturally aligned for its size.
    Misaligned {
        /// Faulting byte address.
        addr: u32,
        /// Required alignment in bytes.
        align: u32,
    },
    /// The current process lacks permission for this access.
    Protection {
        /// Faulting byte address.
        addr: u32,
        /// What was attempted.
        kind: crate::AccessKind,
    },
}

impl MemError {
    /// The faulting address.
    pub fn addr(&self) -> u32 {
        match *self {
            MemError::OutOfRange { addr, .. }
            | MemError::Misaligned { addr, .. }
            | MemError::Protection { addr, .. } => addr,
        }
    }
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::OutOfRange { addr, len } => {
                write!(
                    f,
                    "access of {len} bytes at {addr:#010x} outside physical memory"
                )
            }
            MemError::Misaligned { addr, align } => {
                write!(
                    f,
                    "misaligned access at {addr:#010x} (requires {align}-byte alignment)"
                )
            }
            MemError::Protection { addr, kind } => {
                write!(f, "{kind} permission violation at {addr:#010x}")
            }
        }
    }
}

impl Error for MemError {}

/// The flat, little-endian physical byte store.
///
/// All multi-byte accessors enforce natural alignment — a corrupted base
/// register that produces a misaligned address traps, exactly the
/// wrong-address-calculation channel the paper describes in §4.1.4.
#[derive(Debug, Clone)]
pub struct PhysMem {
    bytes: Vec<u8>,
    /// One bit per [`SNAP_PAGE`] page, set on every write since the
    /// last [`PhysMem::clear_dirty`] (or construction). Lets checkpoint
    /// reconvergence probes compare only pages that could have changed
    /// instead of scanning all of physical memory.
    dirty: PageSet,
}

impl PhysMem {
    /// Allocates `size` bytes of zeroed memory.
    pub fn new(size: u32) -> PhysMem {
        PhysMem {
            bytes: vec![0; size as usize],
            dirty: PageSet::for_mem(size),
        }
    }

    #[inline]
    fn mark_dirty(&mut self, index: usize, len: usize) {
        let first = index / SNAP_PAGE;
        let last = (index + len.max(1) - 1) / SNAP_PAGE;
        for page in first..=last {
            self.dirty.insert(page);
        }
    }

    /// Physical memory size in bytes.
    pub fn size(&self) -> u32 {
        self.bytes.len() as u32
    }

    fn check(&self, addr: u32, len: u32, align: u32) -> Result<usize, MemError> {
        if !addr.is_multiple_of(align) {
            return Err(MemError::Misaligned { addr, align });
        }
        let end = u64::from(addr) + u64::from(len);
        if end > self.bytes.len() as u64 {
            return Err(MemError::OutOfRange { addr, len });
        }
        Ok(addr as usize)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfRange`] if outside physical memory.
    pub fn read_u8(&self, addr: u32) -> Result<u8, MemError> {
        let i = self.check(addr, 1, 1)?;
        Ok(self.bytes[i])
    }

    /// Writes one byte.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfRange`] if outside physical memory.
    pub fn write_u8(&mut self, addr: u32, value: u8) -> Result<(), MemError> {
        let i = self.check(addr, 1, 1)?;
        self.bytes[i] = value;
        self.mark_dirty(i, 1);
        Ok(())
    }

    /// Reads a 32-bit little-endian word.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfRange`] or [`MemError::Misaligned`].
    pub fn read_u32(&self, addr: u32) -> Result<u32, MemError> {
        let i = self.check(addr, 4, 4)?;
        Ok(u32::from_le_bytes(
            self.bytes[i..i + 4].try_into().expect("checked length"),
        ))
    }

    /// Writes a 32-bit little-endian word.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfRange`] or [`MemError::Misaligned`].
    pub fn write_u32(&mut self, addr: u32, value: u32) -> Result<(), MemError> {
        let i = self.check(addr, 4, 4)?;
        self.bytes[i..i + 4].copy_from_slice(&value.to_le_bytes());
        self.mark_dirty(i, 4);
        Ok(())
    }

    /// Reads a 64-bit little-endian word.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfRange`] or [`MemError::Misaligned`].
    pub fn read_u64(&self, addr: u32) -> Result<u64, MemError> {
        let i = self.check(addr, 8, 8)?;
        Ok(u64::from_le_bytes(
            self.bytes[i..i + 8].try_into().expect("checked length"),
        ))
    }

    /// Writes a 64-bit little-endian word.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfRange`] or [`MemError::Misaligned`].
    pub fn write_u64(&mut self, addr: u32, value: u64) -> Result<(), MemError> {
        let i = self.check(addr, 8, 8)?;
        self.bytes[i..i + 8].copy_from_slice(&value.to_le_bytes());
        self.mark_dirty(i, 8);
        Ok(())
    }

    /// Copies a byte slice into memory (used by the loader; unaligned).
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfRange`] if the range does not fit.
    pub fn write_bytes(&mut self, addr: u32, bytes: &[u8]) -> Result<(), MemError> {
        let i = self.check(addr, bytes.len() as u32, 1)?;
        self.bytes[i..i + bytes.len()].copy_from_slice(bytes);
        self.mark_dirty(i, bytes.len());
        Ok(())
    }

    /// Reads a byte range (used by output capture and memory hashing).
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfRange`] if the range does not fit.
    pub fn read_bytes(&self, addr: u32, len: u32) -> Result<&[u8], MemError> {
        let i = self.check(addr, len, 1)?;
        Ok(&self.bytes[i..i + len as usize])
    }

    /// Fills a byte range with zeros.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfRange`] if the range does not fit.
    pub fn zero_range(&mut self, addr: u32, len: u32) -> Result<(), MemError> {
        let i = self.check(addr, len, 1)?;
        self.bytes[i..i + len as usize].fill(0);
        self.mark_dirty(i, len as usize);
        Ok(())
    }

    /// A 64-bit FNV-1a hash of a byte range, used for golden-run
    /// memory-state comparison.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfRange`] if the range does not fit.
    pub fn hash_range(&self, addr: u32, len: u32) -> Result<u64, MemError> {
        let slice = self.read_bytes(addr, len)?;
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in slice {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Ok(hash)
    }

    /// Captures a sparse snapshot: only pages containing at least one
    /// nonzero byte are copied. Guest memory starts zeroed and most of
    /// the 64 MiB physical space is never written, so checkpoints stay
    /// small and restores cheap.
    pub fn snapshot(&self) -> MemSnapshot {
        // Slice comparison against a zero page compiles to memcmp —
        // roughly an order of magnitude faster than a bytewise scan,
        // and this scan runs once per checkpoint over all of memory.
        const ZERO_PAGE: [u8; SNAP_PAGE] = [0; SNAP_PAGE];
        let pages = self
            .bytes
            .chunks(SNAP_PAGE)
            .enumerate()
            .filter(|(_, chunk)| *chunk != &ZERO_PAGE[..chunk.len()])
            .map(|(i, chunk)| ((i * SNAP_PAGE) as u32, chunk.to_vec().into_boxed_slice()))
            .collect();
        MemSnapshot {
            size: self.size(),
            pages,
        }
    }

    /// True when this memory is byte-identical to the image `snap`
    /// captured. Walks both page lists in lockstep: pages retained in
    /// the snapshot are compared directly, every other page must still
    /// be all-zero. Costs one pass over memory (memcmp throughput) —
    /// far cheaper than materialising a second snapshot to compare.
    pub fn matches_snapshot(&self, snap: &MemSnapshot) -> bool {
        const ZERO_PAGE: [u8; SNAP_PAGE] = [0; SNAP_PAGE];
        if self.size() != snap.size {
            return false;
        }
        let mut pages = snap.pages.iter().peekable();
        for (i, chunk) in self.bytes.chunks(SNAP_PAGE).enumerate() {
            let offset = (i * SNAP_PAGE) as u32;
            match pages.peek() {
                Some((page_off, page)) if *page_off == offset => {
                    if &page[..] != chunk {
                        return false;
                    }
                    pages.next();
                }
                _ => {
                    if chunk != &ZERO_PAGE[..chunk.len()] {
                        return false;
                    }
                }
            }
        }
        pages.next().is_none()
    }

    /// Bounded snapshot comparison: like [`PhysMem::matches_snapshot`],
    /// but only the pages listed in `touched` are compared. Sound when
    /// the caller can prove every page *not* in `touched` is unchanged
    /// on both sides since a common ancestor image — which is exactly
    /// what the dirty-page sets recorded by checkpoint capture provide.
    /// Cost scales with the number of touched pages, not memory size.
    pub fn matches_snapshot_within(&self, snap: &MemSnapshot, touched: &PageSet) -> bool {
        const ZERO_PAGE: [u8; SNAP_PAGE] = [0; SNAP_PAGE];
        if self.size() != snap.size {
            return false;
        }
        touched.pages().all(|page| {
            let start = page * SNAP_PAGE;
            if start >= self.bytes.len() {
                return true;
            }
            let end = (start + SNAP_PAGE).min(self.bytes.len());
            let chunk = &self.bytes[start..end];
            match snap.page_at((start) as u32) {
                Some(stored) => stored == chunk,
                None => chunk == &ZERO_PAGE[..chunk.len()],
            }
        })
    }

    /// Pages written since construction or the last
    /// [`PhysMem::clear_dirty`].
    pub fn dirty_pages(&self) -> &PageSet {
        &self.dirty
    }

    /// Resets dirty-page tracking (e.g. right after boot or at each
    /// checkpoint mark, so segments between checkpoints record exactly
    /// the pages that segment wrote).
    pub fn clear_dirty(&mut self) {
        self.dirty.clear();
    }

    /// Returns the dirty set and resets tracking in one step.
    pub fn take_dirty(&mut self) -> PageSet {
        let size = self.size();
        std::mem::replace(&mut self.dirty, PageSet::for_mem(size))
    }
}

/// A set of `SNAP_PAGE`-sized page indices, stored as a bitmap. Used
/// for dirty-page tracking and for bounding snapshot comparisons.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PageSet {
    bits: Vec<u64>,
}

impl PageSet {
    /// An empty set sized for a memory of `mem_size` bytes.
    pub fn for_mem(mem_size: u32) -> PageSet {
        let pages = (mem_size as usize).div_ceil(SNAP_PAGE);
        PageSet {
            bits: vec![0; pages.div_ceil(64)],
        }
    }

    /// Adds one page index.
    #[inline]
    pub fn insert(&mut self, page: usize) {
        if let Some(word) = self.bits.get_mut(page / 64) {
            *word |= 1 << (page % 64);
        }
    }

    /// True when `page` is in the set.
    pub fn contains(&self, page: usize) -> bool {
        self.bits
            .get(page / 64)
            .is_some_and(|w| w & (1 << (page % 64)) != 0)
    }

    /// Merges `other` into `self`.
    pub fn union_with(&mut self, other: &PageSet) {
        if self.bits.len() < other.bits.len() {
            self.bits.resize(other.bits.len(), 0);
        }
        for (dst, src) in self.bits.iter_mut().zip(&other.bits) {
            *dst |= src;
        }
    }

    /// Removes all pages.
    pub fn clear(&mut self) {
        self.bits.fill(0);
    }

    /// Number of pages in the set.
    pub fn len(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True when no page is set.
    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|w| *w == 0)
    }

    /// Iterates the page indices in ascending order.
    pub fn pages(&self) -> impl Iterator<Item = usize> + '_ {
        self.bits.iter().enumerate().flat_map(|(i, word)| {
            let mut w = *word;
            std::iter::from_fn(move || {
                if w == 0 {
                    return None;
                }
                let bit = w.trailing_zeros() as usize;
                w &= w - 1;
                Some(i * 64 + bit)
            })
        })
    }
}

/// Page granularity of [`MemSnapshot`] (independent of the MMU's
/// [`crate::PAGE_SIZE`]; chosen for snapshot compactness).
const SNAP_PAGE: usize = 4096;

/// A sparse, immutable copy of a [`PhysMem`] at one instant: the memory
/// size plus every page that held a nonzero byte. Rebuilding via
/// [`MemSnapshot::restore`] yields a byte-identical memory image.
#[derive(Debug, Clone)]
pub struct MemSnapshot {
    size: u32,
    pages: Vec<(u32, Box<[u8]>)>,
}

impl MemSnapshot {
    /// Size of the captured physical memory in bytes.
    pub fn size(&self) -> u32 {
        self.size
    }

    /// Number of nonzero pages retained.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Reconstructs the full physical memory image. Dirty-page tracking
    /// starts empty: "dirty" on a restored memory means "written since
    /// this snapshot's capture point".
    pub fn restore(&self) -> PhysMem {
        let mut bytes = vec![0u8; self.size as usize];
        for (offset, page) in &self.pages {
            let start = *offset as usize;
            bytes[start..start + page.len()].copy_from_slice(page);
        }
        PhysMem {
            bytes,
            dirty: PageSet::for_mem(self.size),
        }
    }

    /// The retained page starting at byte `offset`, if that page held
    /// any nonzero byte at capture time.
    pub fn page_at(&self, offset: u32) -> Option<&[u8]> {
        let i = self
            .pages
            .binary_search_by_key(&offset, |(off, _)| *off)
            .ok()?;
        Some(&self.pages[i].1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut m = PhysMem::new(4096);
        m.write_u8(3, 0xab).unwrap();
        m.write_u32(8, 0x1234_5678).unwrap();
        m.write_u64(16, 0xdead_beef_cafe_f00d).unwrap();
        assert_eq!(m.read_u8(3).unwrap(), 0xab);
        assert_eq!(m.read_u32(8).unwrap(), 0x1234_5678);
        assert_eq!(m.read_u64(16).unwrap(), 0xdead_beef_cafe_f00d);
    }

    #[test]
    fn little_endian_layout() {
        let mut m = PhysMem::new(64);
        m.write_u32(0, 0x0102_0304).unwrap();
        assert_eq!(m.read_u8(0).unwrap(), 0x04);
        assert_eq!(m.read_u8(3).unwrap(), 0x01);
    }

    #[test]
    fn misalignment_traps() {
        let mut m = PhysMem::new(64);
        assert!(matches!(
            m.read_u32(2),
            Err(MemError::Misaligned { addr: 2, align: 4 })
        ));
        assert!(matches!(
            m.write_u64(4, 0),
            Err(MemError::Misaligned { addr: 4, align: 8 })
        ));
    }

    #[test]
    fn out_of_range_traps() {
        let mut m = PhysMem::new(64);
        assert!(m.read_u8(64).is_err());
        assert!(m.read_u32(64).is_err());
        assert!(m.write_u32(60, 0).is_ok());
        assert!(m.write_u64(60, 0).is_err());
        // Address near u32::MAX must not overflow the bounds check.
        assert!(m.read_u32(u32::MAX - 3).is_err());
    }

    #[test]
    fn hash_detects_single_bit_change() {
        let mut m = PhysMem::new(1024);
        m.write_bytes(0, &[7u8; 1024]).unwrap();
        let h1 = m.hash_range(0, 1024).unwrap();
        m.write_u8(513, 7 ^ 0x10).unwrap();
        let h2 = m.hash_range(0, 1024).unwrap();
        assert_ne!(h1, h2);
    }

    #[test]
    fn snapshot_roundtrip_is_identical() {
        let mut m = PhysMem::new(64 * 1024);
        m.write_bytes(4096, &[0xaa; 100]).unwrap();
        m.write_u8(0, 1).unwrap();
        m.write_u8(64 * 1024 - 1, 0x55).unwrap();
        let snap = m.snapshot();
        // Only the three touched pages are retained.
        assert_eq!(snap.page_count(), 3);
        let back = snap.restore();
        assert_eq!(back.size(), m.size());
        assert_eq!(
            back.hash_range(0, 64 * 1024).unwrap(),
            m.hash_range(0, 64 * 1024).unwrap()
        );
        assert_eq!(
            back.read_bytes(0, 64 * 1024).unwrap(),
            m.read_bytes(0, 64 * 1024).unwrap()
        );
    }

    #[test]
    fn dirty_tracking_records_written_pages() {
        let mut m = PhysMem::new(64 * 1024);
        assert!(m.dirty_pages().is_empty());
        m.write_u8(0, 1).unwrap();
        m.write_u32(2 * 4096, 7).unwrap();
        // A span crossing a page boundary marks both pages.
        m.write_bytes(4 * 4096 - 2, &[1, 2, 3, 4]).unwrap();
        let pages: Vec<usize> = m.dirty_pages().pages().collect();
        assert_eq!(pages, [0, 2, 3, 4]);
        assert_eq!(m.take_dirty().len(), 4);
        assert!(m.dirty_pages().is_empty());
        // A restored memory starts clean too.
        assert!(m.snapshot().restore().dirty_pages().is_empty());
    }

    #[test]
    fn bounded_snapshot_compare_only_sees_listed_pages() {
        let mut m = PhysMem::new(64 * 1024);
        m.write_u32(4096, 0xdead_beef).unwrap();
        let snap = m.snapshot();
        assert!(m.matches_snapshot(&snap));
        assert!(m.matches_snapshot_within(&snap, m.dirty_pages()));

        // Diverge inside a tracked page: both compares notice.
        m.write_u32(4096, 0).unwrap();
        assert!(!m.matches_snapshot(&snap));
        assert!(!m.matches_snapshot_within(&snap, m.dirty_pages()));

        // Diverge outside the bounded set: only the full compare
        // notices — which is exactly the contract (callers must pass
        // every page that could have changed on either side).
        m.write_u32(4096, 0xdead_beef).unwrap();
        m.write_u8(8 * 4096, 9).unwrap();
        let mut only_page_one = PageSet::for_mem(m.size());
        only_page_one.insert(1);
        assert!(!m.matches_snapshot(&snap));
        assert!(m.matches_snapshot_within(&snap, &only_page_one));
        assert!(!m.matches_snapshot_within(&snap, m.dirty_pages()));
    }

    #[test]
    fn page_set_union_and_iteration() {
        let mut a = PageSet::for_mem(1 << 20);
        let mut b = PageSet::for_mem(1 << 20);
        a.insert(1);
        b.insert(200);
        b.insert(1);
        a.union_with(&b);
        assert_eq!(a.pages().collect::<Vec<_>>(), [1, 200]);
        assert_eq!(a.len(), 2);
        assert!(a.contains(200));
        assert!(!a.contains(2));
    }

    #[test]
    fn snapshot_of_partial_tail_page() {
        // Size not a multiple of the snapshot page.
        let mut m = PhysMem::new(4096 + 100);
        m.write_u8(4096 + 99, 7).unwrap();
        let back = m.snapshot().restore();
        assert_eq!(back.size(), 4096 + 100);
        assert_eq!(back.read_u8(4096 + 99).unwrap(), 7);
    }

    #[test]
    fn zero_range_clears() {
        let mut m = PhysMem::new(64);
        m.write_bytes(0, &[0xff; 64]).unwrap();
        m.zero_range(8, 16).unwrap();
        assert_eq!(m.read_u8(7).unwrap(), 0xff);
        assert_eq!(m.read_u8(8).unwrap(), 0);
        assert_eq!(m.read_u8(23).unwrap(), 0);
        assert_eq!(m.read_u8(24).unwrap(), 0xff);
    }
}
