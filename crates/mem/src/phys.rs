//! Flat physical memory.

use std::error::Error;
use std::fmt;

/// A memory access failure, carrying the faulting address.
///
/// These are delivered by the kernel model as segmentation faults /
/// alignment traps, producing the paper's *Unexpected Termination* class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemError {
    /// The access falls outside physical memory.
    OutOfRange {
        /// Faulting byte address.
        addr: u32,
        /// Access size in bytes.
        len: u32,
    },
    /// The access is not naturally aligned for its size.
    Misaligned {
        /// Faulting byte address.
        addr: u32,
        /// Required alignment in bytes.
        align: u32,
    },
    /// The current process lacks permission for this access.
    Protection {
        /// Faulting byte address.
        addr: u32,
        /// What was attempted.
        kind: crate::AccessKind,
    },
}

impl MemError {
    /// The faulting address.
    pub fn addr(&self) -> u32 {
        match *self {
            MemError::OutOfRange { addr, .. }
            | MemError::Misaligned { addr, .. }
            | MemError::Protection { addr, .. } => addr,
        }
    }
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::OutOfRange { addr, len } => {
                write!(f, "access of {len} bytes at {addr:#010x} outside physical memory")
            }
            MemError::Misaligned { addr, align } => {
                write!(f, "misaligned access at {addr:#010x} (requires {align}-byte alignment)")
            }
            MemError::Protection { addr, kind } => {
                write!(f, "{kind} permission violation at {addr:#010x}")
            }
        }
    }
}

impl Error for MemError {}

/// The flat, little-endian physical byte store.
///
/// All multi-byte accessors enforce natural alignment — a corrupted base
/// register that produces a misaligned address traps, exactly the
/// wrong-address-calculation channel the paper describes in §4.1.4.
#[derive(Debug, Clone)]
pub struct PhysMem {
    bytes: Vec<u8>,
}

impl PhysMem {
    /// Allocates `size` bytes of zeroed memory.
    pub fn new(size: u32) -> PhysMem {
        PhysMem { bytes: vec![0; size as usize] }
    }

    /// Physical memory size in bytes.
    pub fn size(&self) -> u32 {
        self.bytes.len() as u32
    }

    fn check(&self, addr: u32, len: u32, align: u32) -> Result<usize, MemError> {
        if addr % align != 0 {
            return Err(MemError::Misaligned { addr, align });
        }
        let end = u64::from(addr) + u64::from(len);
        if end > self.bytes.len() as u64 {
            return Err(MemError::OutOfRange { addr, len });
        }
        Ok(addr as usize)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfRange`] if outside physical memory.
    pub fn read_u8(&self, addr: u32) -> Result<u8, MemError> {
        let i = self.check(addr, 1, 1)?;
        Ok(self.bytes[i])
    }

    /// Writes one byte.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfRange`] if outside physical memory.
    pub fn write_u8(&mut self, addr: u32, value: u8) -> Result<(), MemError> {
        let i = self.check(addr, 1, 1)?;
        self.bytes[i] = value;
        Ok(())
    }

    /// Reads a 32-bit little-endian word.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfRange`] or [`MemError::Misaligned`].
    pub fn read_u32(&self, addr: u32) -> Result<u32, MemError> {
        let i = self.check(addr, 4, 4)?;
        Ok(u32::from_le_bytes(self.bytes[i..i + 4].try_into().expect("checked length")))
    }

    /// Writes a 32-bit little-endian word.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfRange`] or [`MemError::Misaligned`].
    pub fn write_u32(&mut self, addr: u32, value: u32) -> Result<(), MemError> {
        let i = self.check(addr, 4, 4)?;
        self.bytes[i..i + 4].copy_from_slice(&value.to_le_bytes());
        Ok(())
    }

    /// Reads a 64-bit little-endian word.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfRange`] or [`MemError::Misaligned`].
    pub fn read_u64(&self, addr: u32) -> Result<u64, MemError> {
        let i = self.check(addr, 8, 8)?;
        Ok(u64::from_le_bytes(self.bytes[i..i + 8].try_into().expect("checked length")))
    }

    /// Writes a 64-bit little-endian word.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfRange`] or [`MemError::Misaligned`].
    pub fn write_u64(&mut self, addr: u32, value: u64) -> Result<(), MemError> {
        let i = self.check(addr, 8, 8)?;
        self.bytes[i..i + 8].copy_from_slice(&value.to_le_bytes());
        Ok(())
    }

    /// Copies a byte slice into memory (used by the loader; unaligned).
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfRange`] if the range does not fit.
    pub fn write_bytes(&mut self, addr: u32, bytes: &[u8]) -> Result<(), MemError> {
        let i = self.check(addr, bytes.len() as u32, 1)?;
        self.bytes[i..i + bytes.len()].copy_from_slice(bytes);
        Ok(())
    }

    /// Reads a byte range (used by output capture and memory hashing).
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfRange`] if the range does not fit.
    pub fn read_bytes(&self, addr: u32, len: u32) -> Result<&[u8], MemError> {
        let i = self.check(addr, len, 1)?;
        Ok(&self.bytes[i..i + len as usize])
    }

    /// Fills a byte range with zeros.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfRange`] if the range does not fit.
    pub fn zero_range(&mut self, addr: u32, len: u32) -> Result<(), MemError> {
        let i = self.check(addr, len, 1)?;
        self.bytes[i..i + len as usize].fill(0);
        Ok(())
    }

    /// A 64-bit FNV-1a hash of a byte range, used for golden-run
    /// memory-state comparison.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfRange`] if the range does not fit.
    pub fn hash_range(&self, addr: u32, len: u32) -> Result<u64, MemError> {
        let slice = self.read_bytes(addr, len)?;
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in slice {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Ok(hash)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut m = PhysMem::new(4096);
        m.write_u8(3, 0xab).unwrap();
        m.write_u32(8, 0x1234_5678).unwrap();
        m.write_u64(16, 0xdead_beef_cafe_f00d).unwrap();
        assert_eq!(m.read_u8(3).unwrap(), 0xab);
        assert_eq!(m.read_u32(8).unwrap(), 0x1234_5678);
        assert_eq!(m.read_u64(16).unwrap(), 0xdead_beef_cafe_f00d);
    }

    #[test]
    fn little_endian_layout() {
        let mut m = PhysMem::new(64);
        m.write_u32(0, 0x0102_0304).unwrap();
        assert_eq!(m.read_u8(0).unwrap(), 0x04);
        assert_eq!(m.read_u8(3).unwrap(), 0x01);
    }

    #[test]
    fn misalignment_traps() {
        let mut m = PhysMem::new(64);
        assert!(matches!(m.read_u32(2), Err(MemError::Misaligned { addr: 2, align: 4 })));
        assert!(matches!(m.write_u64(4, 0), Err(MemError::Misaligned { addr: 4, align: 8 })));
    }

    #[test]
    fn out_of_range_traps() {
        let mut m = PhysMem::new(64);
        assert!(m.read_u8(64).is_err());
        assert!(m.read_u32(64).is_err());
        assert!(m.write_u32(60, 0).is_ok());
        assert!(m.write_u64(60, 0).is_err());
        // Address near u32::MAX must not overflow the bounds check.
        assert!(m.read_u32(u32::MAX - 3).is_err());
    }

    #[test]
    fn hash_detects_single_bit_change() {
        let mut m = PhysMem::new(1024);
        m.write_bytes(0, &[7u8; 1024]).unwrap();
        let h1 = m.hash_range(0, 1024).unwrap();
        m.write_u8(513, 7 ^ 0x10).unwrap();
        let h2 = m.hash_range(0, 1024).unwrap();
        assert_ne!(h1, h2);
    }

    #[test]
    fn zero_range_clears() {
        let mut m = PhysMem::new(64);
        m.write_bytes(0, &[0xff; 64]).unwrap();
        m.zero_range(8, 16).unwrap();
        assert_eq!(m.read_u8(7).unwrap(), 0xff);
        assert_eq!(m.read_u8(8).unwrap(), 0);
        assert_eq!(m.read_u8(23).unwrap(), 0);
        assert_eq!(m.read_u8(24).unwrap(), 0xff);
    }
}
