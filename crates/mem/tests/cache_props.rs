//! Property-based tests for the cache hierarchy.

use fracas_mem::{Access, CacheParams, MemSystem};
use proptest::prelude::*;

fn small_params() -> CacheParams {
    CacheParams {
        l1_size: 2048,
        l1_ways: 2,
        l2_size: 8192,
        l2_ways: 4,
        line: 64,
        l2_hit_cycles: 8,
        mem_cycles: 40,
    }
}

proptest! {
    /// Counters are conserved: hits + misses equals the access count,
    /// per cache, for any access pattern.
    #[test]
    fn counters_are_conserved(
        pattern in proptest::collection::vec((0usize..2, 0u32..3, 0u32..(1 << 16)), 1..200)
    ) {
        let mut m = MemSystem::new(2, small_params());
        let mut counts = [0u64; 2];
        let mut fetches = [0u64; 2];
        for (core, kind, addr) in pattern {
            let access = match kind {
                0 => Access::Fetch,
                1 => Access::DataRead,
                _ => Access::DataWrite,
            };
            m.access(core, access, addr * 4);
            if kind == 0 {
                fetches[core] += 1;
            } else {
                counts[core] += 1;
            }
        }
        for core in 0..2 {
            prop_assert_eq!(m.l1d_stats(core).accesses(), counts[core]);
            prop_assert_eq!(m.l1i_stats(core).accesses(), fetches[core]);
            let r = m.l1d_stats(core).miss_ratio();
            prop_assert!((0.0..=1.0).contains(&r));
        }
    }

    /// Identical access sequences produce identical statistics
    /// (determinism — the campaign comparison depends on it).
    #[test]
    fn cache_model_is_deterministic(
        pattern in proptest::collection::vec((0u32..2, 0u32..(1 << 14)), 1..150)
    ) {
        let run = || {
            let mut m = MemSystem::new(2, small_params());
            for &(kind, addr) in &pattern {
                let access = if kind == 0 { Access::DataRead } else { Access::DataWrite };
                m.access(0, access, addr * 8);
            }
            (m.l1d_stats(0), m.l2_stats())
        };
        prop_assert_eq!(run(), run());
    }

    /// A working set no larger than one set's associativity never
    /// misses after the cold pass (LRU never evicts what still fits).
    #[test]
    fn fitting_working_set_stays_resident(start in 0u32..64) {
        let params = small_params();
        let mut m = MemSystem::new(1, params);
        // Two lines mapping to the same set (set count = 16).
        let stride = 16 * 64;
        let a = start * 64;
        let b = a + stride;
        m.access(0, Access::DataRead, a);
        m.access(0, Access::DataRead, b);
        for _ in 0..20 {
            prop_assert_eq!(m.access(0, Access::DataRead, a), 0);
            prop_assert_eq!(m.access(0, Access::DataRead, b), 0);
        }
    }

    /// Writing from one core always invalidates any other core's copy:
    /// the other core's re-read is never a silent stale hit.
    #[test]
    fn writes_invalidate_peers(addr in 0u32..(1 << 12)) {
        let addr = addr * 64;
        let mut m = MemSystem::new(2, small_params());
        m.access(0, Access::DataRead, addr);
        m.access(1, Access::DataWrite, addr);
        let before = m.l1d_stats(0).misses;
        m.access(0, Access::DataRead, addr);
        prop_assert_eq!(m.l1d_stats(0).misses, before + 1);
    }
}
