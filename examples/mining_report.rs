//! Cross-layer data mining (the paper's §3.4 tool in miniature): run a
//! small campaign over several scenarios, then correlate profile metrics
//! (memory-instruction share, F*B index) with outcome rates.
//!
//! ```sh
//! cargo run --release --example mining_report
//! ```

use fracas::mine::{pearson, Database};
use fracas::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let isa = IsaKind::Sira64;
    let config = CampaignConfig {
        faults: 80,
        ..CampaignConfig::default()
    };

    // A small but varied slice of the suite.
    let scenarios: Vec<Scenario> = [
        Scenario::new(App::Is, Model::Serial, 1, isa),
        Scenario::new(App::Mg, Model::Serial, 1, isa),
        Scenario::new(App::Ep, Model::Serial, 1, isa),
        Scenario::new(App::Cg, Model::Serial, 1, isa),
        Scenario::new(App::Lu, Model::Serial, 1, isa),
        Scenario::new(App::Ft, Model::Serial, 1, isa),
        Scenario::new(App::Is, Model::Mpi, 4, isa),
        Scenario::new(App::Mg, Model::Mpi, 4, isa),
    ]
    .into_iter()
    .flatten()
    .collect();

    let db: Database = fracas::campaign_suite(&scenarios, &config, |done, total, r| {
        eprintln!("  [{done}/{total}] {}", r.id);
    })?;

    println!(
        "\n{:<18} {:>10} {:>8} {:>8} {:>8} {:>9}",
        "Scenario", "Mem inst%", "UT%", "Hang%", "Masked%", "F*B(1e9)"
    );
    let mut mem_share = Vec::new();
    let mut ut_rate = Vec::new();
    let mut fb = Vec::new();
    let mut hang = Vec::new();
    for c in db.iter() {
        let fxb = c.profile.calls as f64 * c.profile.branches as f64 / 1e9;
        println!(
            "{:<18} {:>10.1} {:>8.1} {:>8.1} {:>8.1} {:>9.3}",
            c.id,
            c.profile.mem_ratio * 100.0,
            c.tally.pct(Outcome::Ut),
            c.tally.pct(Outcome::Hang),
            c.tally.masking_rate() * 100.0,
            fxb,
        );
        mem_share.push(c.profile.mem_ratio);
        ut_rate.push(c.tally.pct(Outcome::Ut));
        fb.push(fxb);
        hang.push(c.tally.pct(Outcome::Hang));
    }

    println!();
    println!(
        "pearson(memory-instruction share, UT rate)   = {:+.2}   (paper 4.1.4: positive)",
        pearson(&mem_share, &ut_rate)
    );
    println!(
        "pearson(F*B index, Hang rate)                = {:+.2}   (paper 4.1.3: positive)",
        pearson(&fb, &hang)
    );
    Ok(())
}
