//! Quickstart: compile an FL program for both ISAs, boot it on the
//! kernel, run a handful of bit flips and classify the outcomes.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use fracas::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A tiny guest program: sum the first 1000 squares and print the
    // result. One source, two instruction sets.
    let source = "
        global int data[1000];
        fn main() -> int {
            let int i = 0;
            let int sum = 0;
            for (i = 0; i < 1000; i = i + 1) { data[i] = i * i; }
            for (i = 0; i < 1000; i = i + 1) { sum = sum + data[i]; }
            print_str(\"sum of squares: \");
            print_int(sum);
            print_char(10);
            return 0;
        }";

    for isa in IsaKind::ALL {
        println!("== {isa} ({}) ==", isa.analogue());

        // Compile + link against the guest runtime, boot a single-core
        // machine, run to completion.
        let image = fracas::rt::build_image(&[source], isa)?;
        let mut kernel = Kernel::boot(&image, 1, BootSpec::serial());
        let outcome = kernel.run(&Limits::default());
        let golden = kernel.report();
        print!("{}", String::from_utf8_lossy(kernel.console()));
        println!(
            "golden: {outcome}, {} instructions, {} cycles",
            golden.total_instructions(),
            golden.cycles
        );

        // Inject ten uniform register bit flips and classify each one
        // against the golden run.
        let faults =
            fracas::inject::sample_faults(isa, 1, golden.cycles, 10, &FaultSpace::default(), 2026);
        for fault in faults {
            let mut kernel = Kernel::boot(&image, 1, BootSpec::serial());
            let limits = Limits {
                max_cycles: golden.cycles * 4,
                max_steps: u64::MAX,
            };
            if kernel
                .run_until_core_cycle(fault.timing_core(), fault.cycle, &limits)
                .is_none()
            {
                fault.apply(&mut kernel);
                kernel.run(&limits);
            }
            let outcome = fracas::inject::classify(&golden, &kernel.report());
            println!("  {:<52} -> {outcome}", format!("{:?}", fault.target));
        }
        println!();
    }
    Ok(())
}
