//! ISA reliability comparison (the paper's §4.1 in miniature): run the
//! same FP-heavy benchmark on the ARMv7-like and ARMv8-like processor
//! models, show the softfloat instruction blow-up, the fault-target
//! register-file sizes, and how the outcome distributions differ.
//!
//! ```sh
//! cargo run --release --example isa_reliability
//! ```

use fracas::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = CampaignConfig {
        faults: 120,
        ..CampaignConfig::default()
    };

    println!(
        "CG (conjugate gradient, FP-heavy) under {} faults per ISA\n",
        config.faults
    );
    let mut rows = Vec::new();
    for isa in IsaKind::ALL {
        let scenario = Scenario::new(App::Cg, Model::Serial, 1, isa).expect("CG serial exists");
        let result = fracas::run_scenario_campaign(&scenario, &config)?;
        rows.push((isa, result));
    }

    println!(
        "{:<26} {:>14} {:>14}",
        "",
        rows[0].0.analogue(),
        rows[1].0.analogue()
    );
    let metric =
        |f: &dyn Fn(&CampaignResult) -> String, name: &str, rows: &[(IsaKind, CampaignResult)]| {
            println!("{:<26} {:>14} {:>14}", name, f(&rows[0].1), f(&rows[1].1));
        };
    metric(
        &|r| r.golden.instructions.to_string(),
        "instructions",
        &rows,
    );
    metric(&|r| r.golden.cycles.to_string(), "cycles", &rows);
    metric(
        &|r| format!("{:.1} %", r.profile.branch_ratio * 100.0),
        "branch share",
        &rows,
    );
    metric(
        &|r| format!("{:.1} %", r.profile.mem_ratio * 100.0),
        "memory share",
        &rows,
    );
    metric(
        &|r| format!("{:.1} %", r.profile.softfloat_cycle_fraction * 100.0),
        "softfloat cycles",
        &rows,
    );
    metric(
        &|r| {
            let key = fracas::mine::parse_id(&r.id).expect("valid id");
            FaultSpace::default().total_bits(key.isa, 1).to_string()
        },
        "fault-target bits",
        &rows,
    );
    println!();
    for class in Outcome::ALL {
        metric(
            &|r| format!("{:.1} %", r.tally.pct(class)),
            class.name(),
            &rows,
        );
    }

    let blowup = rows[0].1.golden.instructions as f64 / rows[1].1.golden.instructions as f64;
    println!(
        "\nThe ARMv7-like model executes {blowup:.1}x the instructions (software FP),\n\
         so a fixed particle fluence strikes it for far longer — the paper's MTBF\n\
         argument for the 64-bit ISA (§4.1.1)."
    );
    Ok(())
}
