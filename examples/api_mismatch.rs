//! Programming-model comparison (the paper's §4.2 in miniature): run the
//! same application under OpenMP-like and MPI-like parallelisation on a
//! dual-core model, compare masking rates, workload balance and the
//! per-class mismatch.
//!
//! ```sh
//! cargo run --release --example api_mismatch
//! ```

use fracas::mine::{mismatch_rows, Database};
use fracas::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = CampaignConfig {
        faults: 120,
        ..CampaignConfig::default()
    };
    let isa = IsaKind::Sira64;
    let app = App::Cg;
    let cores = 2;

    println!(
        "{app} on {cores} cores, {} faults per model ({isa})\n",
        config.faults
    );
    let mut db = Database::new();
    for model in [Model::Omp, Model::Mpi] {
        let scenario = Scenario::new(app, model, cores, isa).expect("variant exists");
        let result = fracas::run_scenario_campaign(&scenario, &config)?;
        println!(
            "{model}: masking {:.1} %, imbalance {:.1} %, API window {:.1} %, cycles {}",
            result.tally.masking_rate() * 100.0,
            result.profile.imbalance * 100.0,
            result.profile.api_cycle_fraction * 100.0,
            result.golden.cycles,
        );
        for class in Outcome::ALL {
            println!("    {:<8} {:5.1} %", class.name(), result.tally.pct(class));
        }
        db.push(result);
    }

    println!();
    for row in mismatch_rows(&db, isa) {
        println!(
            "mismatch (MPI - OMP) for {} x{}: {:.1} %  per-class {:?}",
            row.app,
            row.cores,
            row.mismatch,
            row.delta.map(|d| (d * 10.0).round() / 10.0),
        );
    }
    println!(
        "\nThe paper finds MPI masking higher in 38 of 44 comparisons: its ranks are\n\
         independent processes with balanced work, while the OMP fork/join master\n\
         serialises between regions and leaves cores idling in the kernel (§4.2.2)."
    );
    Ok(())
}
