//! Checkpoint-and-restore speedup demonstration.
//!
//! Times the same injection list twice — resuming from golden-run
//! checkpoints versus replaying from boot — and verifies along the way
//! that both paths produce bit-identical reports. Run with:
//!
//! ```text
//! cargo run --release --example checkpoint_speedup
//! ```
//!
//! `FRACAS_FAULTS` and `FRACAS_CHECKPOINTS` tune the workload.

use fracas::inject::{golden_run_with_checkpoints, inject_one, sample_faults};
use fracas::prelude::*;
use std::time::Instant;

fn main() {
    let config = CampaignConfig::from_env();

    // Pick the first candidate whose golden run is long enough that
    // boot-replay visibly hurts (>= 100k cycles).
    let candidates = [
        (App::Ep, Model::Serial, 1u32),
        (App::Cg, Model::Serial, 1),
        (App::Mg, Model::Serial, 1),
        (App::Is, Model::Omp, 2),
    ];
    let mut picked = None;
    for (app, model, cores) in candidates {
        let scenario = Scenario::new(app, model, cores, IsaKind::Sira64).expect("scenario");
        let workload = Workload::from_scenario(&scenario).expect("builds");
        let golden_start = Instant::now();
        let (golden, _, checkpoints) = golden_run_with_checkpoints(&workload, config.checkpoints);
        let golden_time = golden_start.elapsed();
        if golden.cycles >= 100_000 {
            picked = Some((workload, golden, checkpoints, golden_time));
            break;
        }
    }
    let (workload, golden, checkpoints, golden_time) =
        picked.expect("a candidate scenario reaches 100k golden cycles");

    let faults = sample_faults(
        workload.image.isa,
        workload.cores as u32,
        golden.cycles,
        config.faults,
        &config.space,
        config.seed,
    );
    let limits = Limits {
        max_cycles: ((golden.cycles as f64 * config.watchdog_factor) as u64)
            .max(golden.cycles + 100_000),
        max_steps: (golden.total_instructions() * 8).max(1_000_000),
    };

    println!(
        "scenario {}: golden {} cycles, {} checkpoints, {} faults",
        workload.id,
        golden.cycles,
        checkpoints.len(),
        faults.len()
    );
    println!(
        "golden run with checkpoint capture: {:.3} s",
        golden_time.as_secs_f64()
    );

    let start = Instant::now();
    let resumed: Vec<_> = faults
        .iter()
        .map(|f| inject_one(&workload, f, &checkpoints, &limits))
        .collect();
    let with_checkpoints = start.elapsed();

    let boot_only = CheckpointSet::empty();
    let start = Instant::now();
    let replayed: Vec<_> = faults
        .iter()
        .map(|f| inject_one(&workload, f, &boot_only, &limits))
        .collect();
    let boot_replay = start.elapsed();

    assert_eq!(
        resumed, replayed,
        "restore and boot-replay must be bit-identical"
    );

    let speedup = boot_replay.as_secs_f64() / with_checkpoints.as_secs_f64();
    println!(
        "boot-replay:        {:.3} s  ({:.1} ms/injection)",
        boot_replay.as_secs_f64(),
        boot_replay.as_secs_f64() * 1e3 / faults.len() as f64
    );
    println!(
        "checkpoint-resume:  {:.3} s  ({:.1} ms/injection)",
        with_checkpoints.as_secs_f64(),
        with_checkpoints.as_secs_f64() * 1e3 / faults.len() as f64
    );
    println!(
        "speedup:            {speedup:.2}x (all {} reports identical)",
        faults.len()
    );
}
