//! Cross-crate integration tests: the full pipeline from FL source text
//! down to classified fault-injection outcomes.

use fracas::prelude::*;

/// One source, both ISAs, same functional result — the core promise of
/// the toolchain.
#[test]
fn one_source_two_isas_same_semantics() {
    let src = "
        global float v[64];
        fn main() -> int {
            let int i = 0;
            let float s = 0.0;
            for (i = 0; i < 64; i = i + 1) { v[i] = float(i) * 0.5; }
            for (i = 0; i < 64; i = i + 1) { s = s + v[i]; }
            print_int(int(s));
            return 0;
        }";
    let mut outputs = Vec::new();
    for isa in IsaKind::ALL {
        let image = fracas::rt::build_image(&[src], isa).expect("build");
        let mut kernel = Kernel::boot(&image, 1, BootSpec::serial());
        assert!(kernel.run(&Limits::default()).is_clean_exit(), "{isa}");
        outputs.push(String::from_utf8_lossy(kernel.console()).into_owned());
    }
    assert_eq!(outputs[0], "1008");
    assert_eq!(outputs[0], outputs[1], "both ISAs compute sum 0.5*(0..64)");
}

/// The ARMv7-like ISA pays the softfloat tax in instructions; the
/// ARMv8-like pays in fault-target bits — both paper claims at once.
#[test]
fn isa_tradeoff_is_visible() {
    let scenario32 = Scenario::new(App::Ft, Model::Serial, 1, IsaKind::Sira32).unwrap();
    let scenario64 = Scenario::new(App::Ft, Model::Serial, 1, IsaKind::Sira64).unwrap();
    let run = |s: &Scenario| {
        let workload = Workload::from_scenario(s).unwrap();
        golden_run(&workload).0
    };
    let g32 = run(&scenario32);
    let g64 = run(&scenario64);
    assert!(
        g32.total_instructions() > g64.total_instructions() * 5,
        "FT softfloat blow-up: {} vs {}",
        g32.total_instructions(),
        g64.total_instructions()
    );
    let space = FaultSpace::default();
    assert_eq!(
        space.total_bits(IsaKind::Sira64, 1) / space.total_bits(IsaKind::Sira32, 1),
        8,
        "4x integer growth + FP file"
    );
}

/// A deliberate fault in the stack pointer must surface as UT (the
/// §4.1.4 wrong-address channel), and a PC flip on SIRA-32 as UT/Hang.
#[test]
fn critical_register_faults_have_critical_outcomes() {
    let scenario = Scenario::new(App::Is, Model::Serial, 1, IsaKind::Sira32).unwrap();
    let workload = Workload::from_scenario(&scenario).unwrap();
    let (golden, _) = golden_run(&workload);
    let limits = Limits {
        max_cycles: golden.cycles * 4,
        max_steps: u64::MAX,
    };

    // Flip a high bit of SP (r13) mid-run.
    let mut kernel = Kernel::boot(&workload.image, 1, workload.spec);
    assert!(kernel
        .run_until_core_cycle(0, golden.cycles / 2, &limits)
        .is_none());
    kernel.machine_mut().flip_gpr(0, 13, 24);
    kernel.run(&limits);
    let outcome = fracas::inject::classify(&golden, &kernel.report());
    assert!(
        matches!(outcome, Outcome::Ut | Outcome::Hang),
        "SP corruption should crash or hang, got {outcome}"
    );

    // Flip a mid bit of the architected PC (r15).
    let mut kernel = Kernel::boot(&workload.image, 1, workload.spec);
    assert!(kernel
        .run_until_core_cycle(0, golden.cycles / 2, &limits)
        .is_none());
    kernel.machine_mut().flip_gpr(0, 15, 17);
    kernel.run(&limits);
    let outcome = fracas::inject::classify(&golden, &kernel.report());
    assert!(
        matches!(outcome, Outcome::Ut | Outcome::Hang | Outcome::Omm),
        "PC corruption must not vanish silently as ONA, got {outcome}"
    );
}

/// Faults injected after the application finished its real work are far
/// more likely to vanish — sanity for the lifespan-uniform model.
#[test]
fn late_faults_mask_more_often() {
    let scenario = Scenario::new(App::Ep, Model::Serial, 1, IsaKind::Sira64).unwrap();
    let workload = Workload::from_scenario(&scenario).unwrap();
    let (golden, _) = golden_run(&workload);
    let limits = Limits {
        max_cycles: golden.cycles * 4,
        max_steps: u64::MAX,
    };

    let count_masked = |cycle: u64| -> usize {
        let faults =
            fracas::inject::sample_faults(IsaKind::Sira64, 1, 1, 30, &FaultSpace::default(), 5);
        faults
            .iter()
            .filter(|f| {
                let fault = Fault {
                    target: f.target,
                    cycle,
                    width: 1,
                };
                let mut kernel = Kernel::boot(&workload.image, 1, workload.spec);
                if kernel
                    .run_until_core_cycle(0, fault.cycle, &limits)
                    .is_none()
                {
                    fault.apply(&mut kernel);
                    kernel.run(&limits);
                }
                fracas::inject::classify(&golden, &kernel.report()).is_masked()
            })
            .count()
    };
    let early = count_masked(golden.cycles / 10);
    let late = count_masked(golden.cycles - 2);
    assert!(
        late >= early,
        "late faults should mask at least as often: early {early}, late {late}"
    );
    assert!(
        late >= 20,
        "faults at the last cycles are mostly harmless: {late}"
    );
}

/// Full campaign through the facade plus mining over it.
#[test]
fn campaign_to_mining_pipeline() {
    let isa = IsaKind::Sira64;
    let scenarios: Vec<Scenario> = [
        Scenario::new(App::Is, Model::Mpi, 2, isa),
        Scenario::new(App::Is, Model::Omp, 2, isa),
    ]
    .into_iter()
    .flatten()
    .collect();
    let config = CampaignConfig {
        faults: 40,
        threads: 1,
        ..CampaignConfig::default()
    };
    let db = fracas::campaign_suite(&scenarios, &config, |_, _, _| {}).unwrap();

    let rows = fracas::mine::mismatch_rows(&db, isa);
    assert_eq!(rows.len(), 1);
    assert!(rows[0].mismatch >= 0.0);

    // Round-trip through the on-disk format.
    let text = db.to_json_lines();
    let back = fracas::mine::Database::from_json_lines(&text).unwrap();
    assert_eq!(back.len(), 2);
    let table = fracas::mine::outcome_table(&back, isa, Model::Mpi);
    assert!(table.contains("IS"));
}

/// The kernel's console, memory and context comparisons must be stable
/// across repeated golden runs of a parallel scenario (regression guard
/// for scheduler determinism).
#[test]
fn parallel_golden_runs_are_reproducible() {
    for (app, model, cores) in [
        (App::Cg, Model::Omp, 4),
        (App::Mg, Model::Mpi, 4),
        (App::Dt, Model::Mpi, 2),
    ] {
        let scenario = Scenario::new(app, model, cores, IsaKind::Sira64).unwrap();
        let workload = Workload::from_scenario(&scenario).unwrap();
        let (a, _) = golden_run(&workload);
        let (b, _) = golden_run(&workload);
        assert_eq!(a, b, "{}", scenario.id());
    }
}
