//! End-to-end differential check of the predecoded interpreter on the
//! real NPB workloads: a full kernel run on the production (predecoded)
//! path must be *trace-identical* to the same run on the structured-
//! `Inst` reference path — same outcome, same report (cycles, retired
//! instructions, register context, memory hash, console bytes), and the
//! same golden-run event trace, commit by commit.
//!
//! With tracing enabled the machine executes tick-by-tick on both
//! kernels, so any per-instruction divergence (cycle charge, annul
//! accounting, trap ordering) shows up as a trace or report mismatch
//! rather than being averaged away.

use fracas::prelude::*;

fn run_both_ways(scenario: &Scenario) {
    let workload = Workload::from_scenario(scenario).expect("workload builds");

    let mut fast = Kernel::boot(&workload.image, scenario.cores as usize, workload.spec);
    fast.machine_mut().enable_trace();
    let out_fast = fast.run(&Limits::default());

    let mut reference = Kernel::boot(&workload.image, scenario.cores as usize, workload.spec);
    reference.machine_mut().set_reference_exec(true);
    reference.machine_mut().enable_trace();
    let out_ref = reference.run(&Limits::default());

    assert_eq!(out_fast, out_ref, "outcome diverged: {scenario}");
    assert!(out_fast.is_clean_exit(), "golden run must exit cleanly");
    assert_eq!(
        fast.report(),
        reference.report(),
        "run report diverged: {scenario}"
    );
    assert_eq!(
        fast.machine_mut().take_trace(),
        reference.machine_mut().take_trace(),
        "commit trace diverged: {scenario}"
    );
}

/// Serial EP on both ISAs: the throughput benchmark's own workload.
#[test]
fn ep_serial_trace_identical_both_isas() {
    for isa in IsaKind::ALL {
        let scenario = Scenario::new(App::Ep, Model::Serial, 1, isa).unwrap();
        run_both_ways(&scenario);
    }
}

/// Multicore MPI IS: exercises preemption, syscalls and atomics
/// interleaving with the burst dispatcher on both ISAs.
#[test]
fn is_mpi_trace_identical_both_isas() {
    for isa in IsaKind::ALL {
        let scenario = Scenario::new(App::Is, Model::Mpi, 2, isa).unwrap();
        run_both_ways(&scenario);
    }
}

/// OpenMP FT on SIRA-64: the FP-heavy corner of the corpus.
#[test]
fn ft_omp_trace_identical() {
    let scenario = Scenario::new(App::Ft, Model::Omp, 2, IsaKind::Sira64).unwrap();
    run_both_ways(&scenario);
}
