//! Property-based tests (proptest) over the core data structures and
//! invariants: instruction encoding, condition codes, permission maps,
//! ALU semantics vs host arithmetic, softfloat vs host floats, and the
//! fault sampler.

use fracas_cpu::Machine;
use fracas_isa::{
    decode, encode, link, AluOp, Asm, Cond, FReg, Inst, InstKind, IsaKind, Reg, Width,
};
use fracas_mem::{AccessKind, PermissionMap, Perms, PAGE_SIZE};
use proptest::prelude::*;

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(Reg)
}

fn arb_freg() -> impl Strategy<Value = FReg> {
    (0u8..32).prop_map(FReg)
}

fn arb_cond() -> impl Strategy<Value = Cond> {
    (0usize..Cond::ALL.len()).prop_map(|i| Cond::ALL[i])
}

fn arb_alu_op() -> impl Strategy<Value = AluOp> {
    (0usize..AluOp::ALL.len()).prop_map(|i| AluOp::ALL[i])
}

fn arb_width() -> impl Strategy<Value = Width> {
    prop_oneof![Just(Width::Word), Just(Width::Byte), Just(Width::Half)]
}

fn arb_kind() -> impl Strategy<Value = InstKind> {
    prop_oneof![
        Just(InstKind::Nop),
        Just(InstKind::Halt),
        Just(InstKind::Ret),
        any::<u16>().prop_map(|imm| InstKind::Svc { imm }),
        (arb_alu_op(), arb_reg(), arb_reg(), arb_reg())
            .prop_map(|(op, rd, rn, rm)| InstKind::Alu { op, rd, rn, rm }),
        (arb_alu_op(), arb_reg(), arb_reg(), -1024i16..1024)
            .prop_map(|(op, rd, rn, imm)| InstKind::AluImm { op, rd, rn, imm }),
        (arb_reg(), arb_reg()).prop_map(|(rn, rm)| InstKind::Cmp { rn, rm }),
        (arb_reg(), -1024i16..1024).prop_map(|(rn, imm)| InstKind::CmpImm { rn, imm }),
        (arb_reg(), any::<u16>(), 0u8..4, any::<bool>()).prop_map(|(rd, imm, shift, keep)| {
            InstKind::MovImm {
                rd,
                imm,
                shift,
                keep,
            }
        }),
        (arb_width(), arb_reg(), arb_reg(), -1024i16..1024)
            .prop_map(|(width, rd, rn, off)| InstKind::Ld { width, rd, rn, off }),
        (arb_width(), arb_reg(), arb_reg(), -1024i16..1024)
            .prop_map(|(width, rd, rn, off)| InstKind::St { width, rd, rn, off }),
        (arb_width(), arb_reg(), arb_reg(), arb_reg())
            .prop_map(|(width, rd, rn, rm)| InstKind::LdR { width, rd, rn, rm }),
        (-(1i32 << 20)..(1 << 20)).prop_map(|off| InstKind::B { off }),
        (-(1i32 << 20)..(1 << 20)).prop_map(|off| InstKind::Bl { off }),
        arb_reg().prop_map(|rm| InstKind::Blr { rm }),
        (arb_reg(), arb_reg(), arb_reg()).prop_map(|(rd, rn, rm)| InstKind::AmoAdd { rd, rn, rm }),
        (arb_freg(), arb_reg(), -1024i16..1024).prop_map(|(fd, rn, off)| InstKind::FLd {
            fd,
            rn,
            off
        }),
        (arb_freg(), arb_freg(), arb_freg()).prop_map(|(fd, fa, fb)| InstKind::Fp {
            op: fracas_isa::FpOp::Fmul,
            fd,
            fa,
            fb
        }),
    ]
}

proptest! {
    /// Every representable instruction round-trips through the binary
    /// encoding.
    #[test]
    fn encode_decode_roundtrip(cond in arb_cond(), kind in arb_kind()) {
        let inst = Inst { cond, kind };
        let word = encode(&inst);
        let back = decode(word).expect("encoded instructions decode");
        prop_assert_eq!(back, inst);
    }

    /// Decoding never panics on arbitrary words, and anything it accepts
    /// re-encodes to the same word (the encoding is injective on the
    /// accepted set).
    #[test]
    fn decode_is_total_and_consistent(word in any::<u32>()) {
        if let Ok(inst) = decode(word) {
            // Operand padding bits may be nonzero in arbitrary words;
            // compare through a canonical re-encode/decode cycle instead
            // of raw equality.
            let canon = encode(&inst);
            let again = decode(canon).expect("canonical decodes");
            prop_assert_eq!(again, inst);
        }
    }

    /// A condition and its inverse never agree, for any flag state.
    #[test]
    fn cond_inverse_disagrees(bits in 0u8..16, idx in 1usize..Cond::ALL.len()) {
        let c = Cond::ALL[idx];
        let (n, z, cf, v) = (bits & 1 != 0, bits & 2 != 0, bits & 4 != 0, bits & 8 != 0);
        prop_assert_ne!(c.holds(n, z, cf, v), c.invert().holds(n, z, cf, v));
    }

    /// Page permissions: an access is allowed iff every page it touches
    /// was mapped with a compatible grant.
    #[test]
    fn permission_map_is_page_consistent(
        start in 0u32..200u32,
        pages in 1u32..8,
        probe in 0u32..(1u32 << 20),
        len in 1u32..64,
    ) {
        let mut map = PermissionMap::new(1 << 20);
        let base = start * PAGE_SIZE;
        map.map_range(base, pages * PAGE_SIZE, Perms::RW);
        let ok = map.check(probe, len, AccessKind::Read).is_ok();
        let first = probe / PAGE_SIZE;
        let last = (u64::from(probe) + u64::from(len) - 1) / u64::from(PAGE_SIZE);
        let inside = first >= start && last < u64::from(start + pages);
        prop_assert_eq!(ok, inside);
    }

    /// Guest integer arithmetic agrees with host two's-complement
    /// semantics at both register widths.
    #[test]
    fn guest_alu_matches_host(a in any::<i32>(), b in any::<i32>(), op_idx in 0usize..8) {
        let ops = [AluOp::Add, AluOp::Sub, AluOp::Mul, AluOp::And,
                   AluOp::Orr, AluOp::Eor, AluOp::Sdiv, AluOp::Srem];
        let op = ops[op_idx];
        if matches!(op, AluOp::Sdiv | AluOp::Srem) && b == 0 {
            return Ok(());
        }
        let host32 = match op {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::And => a & b,
            AluOp::Orr => a | b,
            AluOp::Eor => a ^ b,
            AluOp::Sdiv => a.wrapping_div(b),
            AluOp::Srem => a.wrapping_rem(b),
            _ => unreachable!(),
        };
        let mut asm = Asm::new(IsaKind::Sira32);
        asm.global_fn("_start");
        asm.load_imm(Reg(1), a as u32 as u64);
        asm.load_imm(Reg(2), b as u32 as u64);
        asm.alu(op, Reg(0), Reg(1), Reg(2));
        asm.halt();
        let image = link(IsaKind::Sira32, &[asm.into_object()]).expect("link");
        let mut m = Machine::boot_flat(&image, 1);
        m.run_to_halt(100).expect("run");
        prop_assert_eq!(m.core(0).reg(Reg(0)) as u32, host32 as u32);
    }

    /// The softfloat add/mul agree with host f64 to float32-grade
    /// relative precision on moderate operands.
    #[test]
    fn softfloat_tracks_host(
        a in -1.0e6f64..1.0e6,
        b in -1.0e6f64..1.0e6,
        mul in any::<bool>(),
    ) {
        let sym = if mul { "__f64_mul" } else { "__f64_add" };
        let want = if mul { a * b } else { a + b };
        let mut asm = Asm::new(IsaKind::Sira32);
        asm.global_fn("_start");
        asm.load_imm(Reg(0), a.to_bits() & 0xffff_ffff);
        asm.load_imm(Reg(1), a.to_bits() >> 32);
        asm.load_imm(Reg(2), b.to_bits() & 0xffff_ffff);
        asm.load_imm(Reg(3), b.to_bits() >> 32);
        asm.bl_sym(sym);
        asm.halt();
        let image = link(IsaKind::Sira32, &[asm.into_object(), fracas_rt::softfloat()])
            .expect("link");
        let mut m = Machine::boot_flat(&image, 1);
        m.run_to_halt(100_000).expect("run");
        let got = f64::from_bits((m.core(0).reg(Reg(1)) << 32) | m.core(0).reg(Reg(0)));
        if want.abs() > 1e-9 {
            let rel = ((got - want) / want).abs();
            // Addition of near-cancelling operands loses relative
            // precision proportional to the cancellation magnitude.
            let scale = if mul { 1.0 } else {
                (a.abs() + b.abs()) / want.abs().max(1e-300)
            };
            prop_assert!(
                rel <= 3e-6 * scale.max(1.0),
                "{a} {sym} {b}: got {got:e}, want {want:e} (rel {rel:e})"
            );
        }
    }

    /// Fault sampling stays inside the declared space.
    #[test]
    fn fault_sampler_respects_space(seed in any::<u64>(), cores in 1u32..5) {
        let faults = fracas_inject::sample_faults(
            IsaKind::Sira64,
            cores,
            1_000,
            50,
            &fracas_inject::FaultSpace::default(),
            seed,
        );
        for f in faults {
            prop_assert!(f.cycle < 1_000);
            match f.target {
                fracas_inject::FaultTarget::Gpr { core, reg, bit }
                | fracas_inject::FaultTarget::Fpr { core, reg, bit } => {
                    prop_assert!(core < cores);
                    prop_assert!(reg < 32);
                    prop_assert!(bit < 64);
                }
                other => prop_assert!(false, "unexpected target {other:?}"),
            }
        }
    }

    /// Bit flips are involutions: applying the same fault twice restores
    /// the register file.
    #[test]
    fn flips_are_involutions(reg in 0u32..32, bit in 0u32..64, seed in any::<u64>()) {
        let mut asm = Asm::new(IsaKind::Sira64);
        asm.global_fn("_start");
        asm.halt();
        let image = link(IsaKind::Sira64, &[asm.into_object()]).expect("link");
        let mut m = Machine::boot_flat(&image, 1);
        m.core_mut(0).set_reg(Reg((reg % 32) as u8), seed);
        let before = m.core(0).context_hash();
        m.flip_gpr(0, reg, bit);
        let mid = m.core(0).context_hash();
        m.flip_gpr(0, reg, bit);
        prop_assert_eq!(m.core(0).context_hash(), before);
        prop_assert_ne!(mid, before);
    }
}

/// A booted 2-core, 3-process kernel plus the registry space dimensions
/// covering every fault domain — the shared fixture for the generic
/// registry property tests. Three processes on two cores leave a live
/// run-queue entry, so kernel-control flips hit occupied state too.
fn registry_fixture() -> (fracas_kernel::Kernel, fracas_inject::SpaceDims) {
    use fracas_inject::{FaultSpace, SpaceDims};
    let mut asm = Asm::new(IsaKind::Sira64);
    asm.global_fn("_start");
    asm.load_imm(Reg(1), 0xdead_beef);
    asm.halt();
    let image = link(IsaKind::Sira64, &[asm.into_object()]).expect("link");
    let spec = fracas_kernel::BootSpec {
        processes: 3,
        ..fracas_kernel::BootSpec::serial()
    };
    let kernel = fracas_kernel::Kernel::boot(&image, 2, spec);
    let space = FaultSpace {
        flags: true,
        mem: Some((0, 4096)),
        text: true,
        cache: true,
        kernelctl: true,
        skip: true,
        storebuf: true,
        cachedata: true,
        ..FaultSpace::default()
    };
    let dims = SpaceDims::of(IsaKind::Sira64, 2, image.text.len() as u32, &spec, space);
    (kernel, dims)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// `Fault::apply` is an involution for **every registered fault
    /// domain** and every MBU width: a second application restores the
    /// register contexts, flags, memory, text, cache metadata, scheduler
    /// state, page permissions and skip latches bit-exactly — checked
    /// through `Kernel::state_matches`, which compares all of them. The
    /// target is decoded from a uniform offset by the domain's own
    /// `make`, so every coordinate the sampler can produce is covered.
    #[test]
    fn fault_apply_is_involution_for_every_domain(
        domain_idx in 0usize..fracas_inject::domains().len(),
        core in 0u32..2,
        offset in any::<u64>(),
        cycle in any::<u64>(),
        width in 1u32..5,
    ) {
        let (mut kernel, dims) = registry_fixture();
        let domain = &fracas_inject::domains()[domain_idx];
        let bits = (domain.bits)(&dims);
        prop_assert!(bits > 0, "fixture must enable domain {}", domain.name);
        let target = (domain.make)(&dims, core, offset % bits);
        let fault = fracas_inject::Fault { target, cycle, width };
        let before = kernel.snapshot();
        fault.apply(&mut kernel);
        fault.apply(&mut kernel);
        prop_assert!(
            kernel.state_matches(&before),
            "fault {:?} (domain {}) is not an involution", fault, domain.name
        );
    }

    /// The registry's per-domain timing and ephemerality rules reproduce
    /// the historical hard-coded ones for the legacy domains: core-local
    /// targets time against their own core and are ephemeral; memory and
    /// text targets time against core 0 and persist.
    #[test]
    fn registry_timing_and_ephemerality_match_legacy_rules(
        domain_idx in 0usize..fracas_inject::domains().len(),
        core in 0u32..2,
        offset in any::<u64>(),
    ) {
        use fracas_inject::FaultTarget;
        let (_, dims) = registry_fixture();
        let domain = &fracas_inject::domains()[domain_idx];
        let bits = (domain.bits)(&dims);
        prop_assert!(bits > 0);
        let target = (domain.make)(&dims, core, offset % bits);
        let fault = fracas_inject::Fault { target, cycle: 0, width: 1 };
        let legacy = match target {
            FaultTarget::Gpr { core, .. }
            | FaultTarget::Fpr { core, .. }
            | FaultTarget::Flag { core, .. } => Some((core as usize, true)),
            FaultTarget::Mem { .. } | FaultTarget::Text { .. } => Some((0, false)),
            _ => None,
        };
        if let Some((timing, ephemeral)) = legacy {
            prop_assert_eq!(fault.timing_core(), timing);
            prop_assert_eq!(fault.targets_ephemeral_state(), ephemeral);
        }
    }
}

/// A width equal to a domain's declared wrap modulus upsets the whole
/// struck word exactly once — regardless of which bit the upset starts
/// at. That pins each registry `wrap_modulus` to the flip hooks' actual
/// wrapping arithmetic, domain by domain (including the historical
/// implicit flag wrap at 4, now declared).
#[test]
fn mbu_width_wraps_at_each_domains_declared_modulus() {
    use fracas_inject::{domain_of, Fault, FaultTarget};
    let cases = [
        // (same word, two different starting bits)
        (
            FaultTarget::Gpr {
                core: 0,
                reg: 1,
                bit: 0,
            },
            FaultTarget::Gpr {
                core: 0,
                reg: 1,
                bit: 17,
            },
        ),
        (
            FaultTarget::Fpr {
                core: 1,
                reg: 3,
                bit: 0,
            },
            FaultTarget::Fpr {
                core: 1,
                reg: 3,
                bit: 63,
            },
        ),
        (
            FaultTarget::Flag { core: 0, which: 0 },
            FaultTarget::Flag { core: 0, which: 3 },
        ),
        (
            FaultTarget::Mem { addr: 64, bit: 0 },
            FaultTarget::Mem { addr: 64, bit: 5 },
        ),
        (
            FaultTarget::Text { word: 0, bit: 0 },
            FaultTarget::Text { word: 0, bit: 31 },
        ),
        (
            FaultTarget::CacheState {
                core: 1,
                unit: 1,
                line: 7,
                bit: 0,
            },
            FaultTarget::CacheState {
                core: 1,
                unit: 1,
                line: 7,
                bit: 39,
            },
        ),
        (
            FaultTarget::RunQueue { slot: 0, bit: 0 },
            FaultTarget::RunQueue { slot: 0, bit: 30 },
        ),
        // Store-buffer MBUs wrap at the 97-bit entry: a full-width upset
        // from any starting bit flips the whole entry and never crosses
        // into its neighbour.
        (
            FaultTarget::StoreBuf {
                core: 1,
                entry: 2,
                bit: 0,
            },
            FaultTarget::StoreBuf {
                core: 1,
                entry: 2,
                bit: 42,
            },
        ),
        (
            FaultTarget::CacheData {
                core: 0,
                unit: 1,
                line: 3,
                bit: 0,
            },
            FaultTarget::CacheData {
                core: 0,
                unit: 1,
                line: 3,
                bit: 511,
            },
        ),
    ];
    for (a, b) in cases {
        let domain = domain_of(&a);
        let width = (domain.wrap_modulus)(IsaKind::Sira64);
        let (mut ka, _) = registry_fixture();
        let (mut kb, _) = registry_fixture();
        Fault {
            target: a,
            cycle: 0,
            width,
        }
        .apply(&mut ka);
        Fault {
            target: b,
            cycle: 0,
            width,
        }
        .apply(&mut kb);
        assert!(
            ka.state_matches(&kb.snapshot()),
            "domain {}: width {} starting at {:?} vs {:?} must flip the same full word",
            domain.name,
            width,
            a,
            b
        );
    }
    // The page-permission half of the kernel-control domain wraps at its
    // own 3-bit entry width (narrower than the domain's declared
    // run-queue modulus): width 3 upsets all of read/write/execute from
    // any starting bit.
    let (mut ka, _) = registry_fixture();
    let (mut kb, _) = registry_fixture();
    for (k, bit) in [(&mut ka, 0), (&mut kb, 2)] {
        Fault {
            target: FaultTarget::PagePerm {
                pid: 1,
                page: 0,
                bit,
            },
            cycle: 0,
            width: 3,
        }
        .apply(k);
    }
    assert!(ka.state_matches(&kb.snapshot()));
    // The skip latch's modulus is 1: every adjacent "bit" folds onto the
    // single toggle, so even widths cancel and odd widths arm it.
    let (mut k, _) = registry_fixture();
    let arm = |k: &mut fracas_kernel::Kernel, width| {
        Fault {
            target: FaultTarget::InstrSkip { core: 0 },
            cycle: 0,
            width,
        }
        .apply(k);
    };
    let idle = k.snapshot();
    arm(&mut k, 2);
    assert!(k.state_matches(&idle), "even skip widths cancel");
    arm(&mut k, 3);
    assert!(!k.state_matches(&idle), "odd skip widths arm the latch");
}

/// The registry's declared moduli themselves (so a silent registry edit
/// can't weaken the wrap test above).
#[test]
fn declared_wrap_moduli_match_the_word_widths() {
    let modulus = |name: &str, isa| {
        (fracas_inject::domain_named(name)
            .expect("registered")
            .wrap_modulus)(isa)
    };
    assert_eq!(modulus("gpr", IsaKind::Sira32), 32);
    assert_eq!(modulus("gpr", IsaKind::Sira64), 64);
    assert_eq!(modulus("fpr", IsaKind::Sira64), 64);
    assert_eq!(modulus("flags", IsaKind::Sira32), 4);
    assert_eq!(modulus("mem", IsaKind::Sira64), 8);
    assert_eq!(modulus("text", IsaKind::Sira32), 32);
    assert_eq!(modulus("cache", IsaKind::Sira64), 40);
    assert_eq!(modulus("kernelctl", IsaKind::Sira64), 32);
    assert_eq!(modulus("skip", IsaKind::Sira64), 1);
    assert_eq!(modulus("storebuf", IsaKind::Sira64), 97);
    assert_eq!(modulus("cachedata", IsaKind::Sira64), 512);
}
