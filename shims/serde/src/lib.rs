//! Offline stand-in for `serde`.
//!
//! Instead of the visitor-based serde data model, this shim routes
//! everything through an owned [`Value`] tree (the JSON data model).
//! [`Serialize`] renders a type into a `Value`; [`Deserialize`]
//! rebuilds it from one. `serde_json` (the sibling shim) prints and
//! parses `Value`s. The derive macros in `serde_derive` generate the
//! same externally-tagged representation real serde uses, so JSON
//! written by this shim round-trips and stays human-readable.

pub use serde_derive::{Deserialize, Serialize};

/// The self-describing data model (mirrors JSON).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object: insertion-ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Object entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// String contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// Looks a field up in an object's entry list.
pub fn field<'a>(entries: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// A deserialization error (carried up through `serde_json::Error`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// Builds an error from any message.
    pub fn custom(msg: impl std::fmt::Display) -> DeError {
        DeError(msg.to_string())
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Types renderable into a [`Value`].
pub trait Serialize {
    /// Renders `self` as a value tree.
    fn to_value(&self) -> Value;
}

/// Types rebuildable from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    ///
    /// # Errors
    ///
    /// Returns a [`DeError`] naming the first mismatch.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match *v {
                    Value::U64(n) => <$t>::try_from(n)
                        .map_err(|_| DeError::custom(format!("{n} out of range"))),
                    _ => Err(DeError::custom(concat!("expected ", stringify!($t)))),
                }
            }
        }
    )*};
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::U64(n as u64) } else { Value::I64(n) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let wide: i64 = match *v {
                    Value::U64(n) => i64::try_from(n)
                        .map_err(|_| DeError::custom(format!("{n} out of range")))?,
                    Value::I64(n) => n,
                    _ => return Err(DeError::custom(concat!("expected ", stringify!($t)))),
                };
                <$t>::try_from(wide).map_err(|_| DeError::custom(format!("{wide} out of range")))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match *v {
            Value::F64(x) => Ok(x),
            Value::U64(n) => Ok(n as f64),
            Value::I64(n) => Ok(n as f64),
            _ => Err(DeError::custom("expected f64")),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match *v {
            Value::Bool(b) => Ok(b),
            _ => Err(DeError::custom("expected bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| DeError::custom("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let items = v.as_array().ok_or_else(|| DeError::custom("expected tuple array"))?;
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(DeError::custom(format!(
                        "expected {expected}-tuple, got {} elements", items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-5i32).to_value()).unwrap(), -5);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        let pair: (String, u64) = ("f".to_string(), 9);
        assert_eq!(<(String, u64)>::from_value(&pair.to_value()).unwrap(), pair);
        let v: Vec<Option<u32>> = vec![Some(1), None, Some(3)];
        assert_eq!(Vec::<Option<u32>>::from_value(&v.to_value()).unwrap(), v);
    }

    #[test]
    fn integer_cross_width_errors() {
        assert!(u8::from_value(&Value::U64(300)).is_err());
        assert!(u64::from_value(&Value::Str("x".into())).is_err());
        // An integral JSON number deserializes into an f64 field.
        assert_eq!(f64::from_value(&Value::U64(3)).unwrap(), 3.0);
    }
}
