//! Offline stand-in for `serde_json`: a JSON printer and a recursive
//! descent parser over the shim `serde::Value` data model.

use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt;

/// A JSON (de)serialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn msg(m: impl Into<String>) -> Error {
        Error(m.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Error {
        Error(e.0)
    }
}

/// Serializes a value to a compact JSON string.
///
/// # Errors
///
/// Never fails for the shim data model; the `Result` mirrors the real
/// crate's signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out);
    Ok(out)
}

/// Parses a JSON string into any `Deserialize` type.
///
/// # Errors
///
/// Returns a parse or shape mismatch error.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(T::from_value(&value)?)
}

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                // Rust's shortest round-trip float printing; keep an
                // explicit fraction so the value re-parses as a float.
                let s = format!("{x}");
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                // JSON has no NaN/Inf; match serde_json's lossy `null`.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(item, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::msg("unexpected end of JSON"))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(Error::msg(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => {
                self.eat_keyword("null")?;
                Ok(Value::Null)
            }
            b't' => {
                self.eat_keyword("true")?;
                Ok(Value::Bool(true))
            }
            b'f' => {
                self.eat_keyword("false")?;
                Ok(Value::Bool(false))
            }
            b'"' => Ok(Value::Str(self.parse_string()?)),
            b'[' => {
                self.pos += 1;
                let mut items = Vec::new();
                if self.peek()? == b']' {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b']' => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => {
                            return Err(Error::msg(format!(
                                "expected `,` or `]` at byte {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            b'{' => {
                self.pos += 1;
                let mut entries = Vec::new();
                if self.peek()? == b'}' {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b'}' => {
                            self.pos += 1;
                            return Ok(Value::Object(entries));
                        }
                        _ => {
                            return Err(Error::msg(format!(
                                "expected `,` or `}}` at byte {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            b'-' | b'0'..=b'9' => self.parse_number(),
            other => Err(Error::msg(format!(
                "unexpected byte `{}` at {}",
                other as char, self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error::msg("unterminated string"))?;
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(s);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::msg("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{08}'),
                        b'f' => s.push('\u{0c}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::msg("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::msg("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::msg("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs: only the BMP is produced by
                            // the writer, but accept pairs on input.
                            let c = if (0xd800..0xdc00).contains(&code) {
                                if self.bytes.get(self.pos..self.pos + 2) != Some(b"\\u") {
                                    return Err(Error::msg("unpaired surrogate"));
                                }
                                self.pos += 2;
                                let hex2 = self
                                    .bytes
                                    .get(self.pos..self.pos + 4)
                                    .and_then(|h| std::str::from_utf8(h).ok())
                                    .ok_or_else(|| Error::msg("truncated surrogate"))?;
                                let low = u32::from_str_radix(hex2, 16)
                                    .map_err(|_| Error::msg("invalid surrogate"))?;
                                self.pos += 4;
                                0x10000 + ((code - 0xd800) << 10) + (low - 0xdc00)
                            } else {
                                code
                            };
                            s.push(
                                char::from_u32(c)
                                    .ok_or_else(|| Error::msg("invalid unicode escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::msg(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8).
                    let start = self.pos;
                    let len = utf8_len(b);
                    self.pos += len;
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| Error::msg("invalid UTF-8 in string"))?;
                    s.push_str(chunk);
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error::msg(format!("invalid number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|_| Error::msg(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|_| Error::msg(format!("invalid number `{text}`")))
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<i64>("-7").unwrap(), -7);
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        // Integral floats keep a fraction so they stay floats on re-parse.
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(from_str::<f64>("2.0").unwrap(), 2.0);
        assert_eq!(from_str::<String>("\"a\\nb\\u0041\"").unwrap(), "a\nbA");
    }

    #[test]
    fn containers_roundtrip() {
        let v: Vec<(String, u64)> = vec![("x".into(), 1), ("y".into(), 2)];
        let json = to_string(&v).unwrap();
        assert_eq!(json, r#"[["x",1],["y",2]]"#);
        assert_eq!(from_str::<Vec<(String, u64)>>(&json).unwrap(), v);
        let o: Option<u32> = None;
        assert_eq!(to_string(&o).unwrap(), "null");
        assert_eq!(from_str::<Option<u32>>("null").unwrap(), None);
    }

    #[test]
    fn float_shortest_roundtrip() {
        for &x in &[0.1f64, 1.0 / 3.0, 1e-12, 123456.789, f64::MAX] {
            let json = to_string(&x).unwrap();
            assert_eq!(from_str::<f64>(&json).unwrap(), x, "{json}");
        }
    }

    #[test]
    fn whitespace_and_errors() {
        assert_eq!(from_str::<Vec<u64>>(" [ 1 , 2 ] ").unwrap(), vec![1, 2]);
        assert!(from_str::<u64>("12 34").is_err());
        assert!(from_str::<u64>("[").is_err());
        assert!(from_str::<u64>("\"unterminated").is_err());
    }
}
