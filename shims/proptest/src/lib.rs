//! Offline stand-in for `proptest`: a generate-only property-testing
//! harness implementing the surface FRACAS's suites use.
//!
//! Differences from the real crate, by design:
//!
//! - **No shrinking.** A failing case reports its inputs (via `Debug`)
//!   and the deterministic case index instead of a minimized example.
//! - **Deterministic seeding.** Each `proptest!` test derives its RNG
//!   seed from the test's module path and name, so failures reproduce
//!   exactly across runs and machines.
//! - Strategies are plain generator objects (`gen_value`), not
//!   value trees.

use std::marker::PhantomData;
use std::ops::Range;
use std::sync::Arc;

pub mod test_runner {
    //! Test execution support: RNG, config and case errors.

    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// Deterministic per-test RNG.
    pub struct TestRng(StdRng);

    impl TestRng {
        /// Seeds the RNG from a test's fully qualified name.
        pub fn from_name(name: &str) -> TestRng {
            let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
            for &b in name.as_bytes() {
                hash ^= u64::from(b);
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng(StdRng::seed_from_u64(hash))
        }

        /// The next raw 64-bit word.
        #[allow(clippy::should_implement_trait)]
        pub fn next(&mut self) -> u64 {
            self.0.next_u64()
        }

        /// Uniform value in `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: u64) -> u64 {
            ((u128::from(self.next()) * u128::from(n)) >> 64) as u64
        }

        /// Uniform float in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Proptest execution configuration.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 128 }
        }
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    /// A failed property case (the message explains the assertion).
    #[derive(Debug, Clone)]
    pub struct TestCaseError(pub String);

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }
}

use test_runner::TestRng;

pub mod strategy {
    //! Value-generation strategies.

    use super::*;

    /// A generator of values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generates one value.
        fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { base: self, f }
        }

        /// Builds a recursive strategy: `self` generates leaves and
        /// `recurse` wraps an inner strategy into one more layer, up
        /// to `depth` layers. (`desired_size` / `expected_branch_size`
        /// are accepted for real-proptest compatibility but unused.)
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> Recursive<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R + 'static,
        {
            Recursive {
                leaf: self.boxed(),
                rec: Arc::new(move |inner| recurse(inner).boxed()),
                depth,
            }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
        {
            BoxedStrategy(Arc::new(move |rng| self.gen_value(rng)))
        }
    }

    /// A type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<T>(pub(crate) Arc<dyn Fn(&mut TestRng) -> T>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Arc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn gen_value(&self, rng: &mut TestRng) -> U {
            (self.f)(self.base.gen_value(rng))
        }
    }

    /// See [`Strategy::prop_recursive`].
    pub struct Recursive<T> {
        leaf: BoxedStrategy<T>,
        rec: Arc<dyn Fn(BoxedStrategy<T>) -> BoxedStrategy<T>>,
        depth: u32,
    }

    impl<T> Clone for Recursive<T> {
        fn clone(&self) -> Self {
            Recursive {
                leaf: self.leaf.clone(),
                rec: Arc::clone(&self.rec),
                depth: self.depth,
            }
        }
    }

    impl<T: 'static> Strategy for Recursive<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            // Sample a nesting depth, then stack that many layers.
            let layers = rng.below(u64::from(self.depth) + 1);
            let mut s = self.leaf.clone();
            for _ in 0..layers {
                s = (self.rec)(s);
            }
            s.gen_value(rng)
        }
    }

    /// Always generates a clone of one value.
    #[derive(Debug, Clone, Copy)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn gen_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice among type-erased alternatives
    /// (the `prop_oneof!` backing type).
    pub struct OneOf<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> OneOf<T> {
        /// Builds the choice; `options` must be non-empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> OneOf<T> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            OneOf { options }
        }
    }

    impl<T> Clone for OneOf<T> {
        fn clone(&self) -> Self {
            OneOf {
                options: self.options.clone(),
            }
        }
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].gen_value(rng)
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn gen_value(&self, rng: &mut TestRng) -> f64 {
            self.start + (self.end - self.start) * rng.unit_f64()
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident : $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.gen_value(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A: 0)
        (A: 0, B: 1)
        (A: 0, B: 1, C: 2)
        (A: 0, B: 1, C: 2, D: 3)
        (A: 0, B: 1, C: 2, D: 3, E: 4)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    }
}

pub mod arbitrary {
    //! `any::<T>()` support.

    use super::strategy::Strategy;
    use super::*;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Generates an arbitrary value (edge-biased for integers).
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    // Mild edge bias: ~3/16 of draws are 0/MIN/MAX.
                    match rng.below(16) {
                        0 => 0,
                        1 => <$t>::MAX,
                        2 => <$t>::MIN,
                        _ => rng.next() as $t,
                    }
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Finite, moderately scaled floats.
            (rng.next() as i64 as f64) * 2.0f64.powi(-(rng.below(64) as i32))
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            *self
        }
    }
    impl<T> Copy for Any<T> {}

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// A full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::*;

    /// See [`vec()`].
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// Generates `Vec`s with lengths drawn from `len` and elements
    /// from `elem`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.clone().gen_value(rng);
            (0..n).map(|_| self.elem.gen_value(rng)).collect()
        }
    }
}

pub mod prelude {
    //! The glob-import surface (`use proptest::prelude::*`).

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `Config::cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let mut rng = $crate::test_runner::TestRng::from_name(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::gen_value(&($strat), &mut rng);)+
                let inputs = format!(
                    concat!($(stringify!($arg), " = {:?}  "),+),
                    $(&$arg),+
                );
                let outcome = (|| -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest {} failed at case {}/{}:\n  {}\n  inputs: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        e.0,
                        inputs
                    );
                }
            }
        }
    )*};
}

/// Uniform choice among strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $({
                #[allow(unused_parens)]
                let __strat = $strat;
                $crate::strategy::Strategy::boxed(__strat)
            }),+
        ])
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError(
                concat!("assertion failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::core::result::Result::Err($crate::test_runner::TestCaseError(
                        format!(
                            "assertion failed: `{} == {}`\n    left: {:?}\n   right: {:?}",
                            stringify!($left),
                            stringify!($right),
                            l,
                            r
                        ),
                    ));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::core::result::Result::Err($crate::test_runner::TestCaseError(
                        format!($($fmt)+),
                    ));
                }
            }
        }
    };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if *l == *r {
                    return ::core::result::Result::Err($crate::test_runner::TestCaseError(
                        format!(
                            "assertion failed: `{} != {}`\n    both: {:?}",
                            stringify!($left),
                            stringify!($right),
                            l
                        ),
                    ));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                if *l == *r {
                    return ::core::result::Result::Err($crate::test_runner::TestCaseError(
                        format!($($fmt)+),
                    ));
                }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, y in -5i32..5, f in -1.0f64..1.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..5).contains(&y));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn maps_and_tuples_compose(pair in (0u8..4, 10u8..14).prop_map(|(a, b)| (b, a))) {
            prop_assert!((10..14).contains(&pair.0));
            prop_assert!((0..4).contains(&pair.1));
        }

        #[test]
        fn oneof_hits_every_option(v in prop_oneof![Just(1u8), Just(2u8), Just(3u8)]) {
            prop_assert!((1..=3).contains(&v));
        }

        #[test]
        fn vectors_respect_length(v in crate::collection::vec(0u32..10, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug, Clone)]
        #[allow(dead_code)]
        enum T {
            Leaf(u8),
            Node(Box<T>, Box<T>),
        }
        fn depth(t: &T) -> u32 {
            match t {
                T::Leaf(_) => 0,
                T::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let strat = (0u8..10)
            .prop_map(T::Leaf)
            .prop_recursive(4, 24, 2, |inner| {
                (inner.clone(), inner).prop_map(|(a, b)| T::Node(Box::new(a), Box::new(b)))
            });
        let mut rng = crate::test_runner::TestRng::from_name("recursive_smoke");
        let mut seen_node = false;
        for _ in 0..64 {
            let t = strat.gen_value(&mut rng);
            seen_node |= matches!(t, T::Node(..));
            assert!(depth(&t) <= 16, "depth bounded");
        }
        assert!(seen_node, "recursion layer exercised");
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::TestRng::from_name("same");
        let mut b = crate::test_runner::TestRng::from_name("same");
        for _ in 0..32 {
            assert_eq!(
                (0u64..1000).gen_value(&mut a),
                (0u64..1000).gen_value(&mut b)
            );
        }
    }
}
