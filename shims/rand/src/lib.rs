//! Offline stand-in for the `rand` crate.
//!
//! Implements exactly the surface FRACAS uses: a deterministic
//! [`rngs::StdRng`] seeded via [`SeedableRng::seed_from_u64`] and
//! integer range sampling via [`RngExt::random_range`]. The generator
//! is xoshiro256++ with splitmix64 seed expansion — high quality for
//! simulation sampling and stable across platforms, which the
//! campaign-determinism tests depend on.

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Core entropy source: a stream of 64-bit words.
pub trait RngCore {
    /// The next 64 bits of the stream.
    fn next_u64(&mut self) -> u64;
}

/// Integer types that can be sampled uniformly from a range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `[low, high)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "empty sample range");
                let span = (high as u128).wrapping_sub(low as u128);
                // Widening-multiply mapping (Lemire, bias negligible at
                // these span sizes and irrelevant to determinism).
                let x = u128::from(rng.next_u64());
                low.wrapping_add(((x * span) >> 64) as $t)
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize);

/// Convenience sampling methods, implemented for every [`RngCore`].
pub trait RngExt: RngCore {
    /// Uniform sample from a half-open integer range.
    fn random_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// A uniform `u64`.
    fn random_u64(&mut self) -> u64 {
        self.next_u64()
    }

    /// A uniform bool.
    fn random_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random_range(0u64..1000), b.random_range(0u64..1000));
        }
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..32).map(|_| a.random_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| c.random_u64()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn range_bounds_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.random_range(3u32..13);
            assert!((3..13).contains(&v));
            seen[(v - 3) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of a small range hit");
    }
}
