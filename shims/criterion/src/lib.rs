//! Offline stand-in for `criterion`: a simple wall-clock timing loop
//! with the `criterion_group!`/`criterion_main!` entry points and the
//! `Criterion`/`BenchmarkGroup`/`Bencher` API FRACAS's benches use.
//!
//! Each benchmark is warmed up, then timed over `sample_size` samples;
//! the median per-iteration time is printed. `--bench` harness flags
//! are accepted and ignored, except an optional substring filter
//! argument which skips non-matching benchmarks (mirroring cargo's
//! `cargo bench <filter>` behaviour).

use std::time::{Duration, Instant};

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Criterion {
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-'))
            .filter(|a| !a.is_empty());
        Criterion {
            sample_size: 20,
            filter,
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark (builder style,
    /// mirroring the real API's by-value configuration chain).
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&id.into(), self.sample_size, self.filter.as_deref(), f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            criterion: self,
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        run_bench(&full, self.sample_size, self.criterion.filter.as_deref(), f);
        self
    }

    /// Finishes the group (drop would do; mirrors the real API).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; `iter` times the hot loop.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `f`, collecting per-iteration samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warmup: run until ~50ms or 3 iterations, whichever is later,
        // and estimate the per-iteration cost.
        let warm_start = Instant::now();
        let mut iters = 0u64;
        while iters < 3 || (warm_start.elapsed() < Duration::from_millis(50) && iters < 1_000_000) {
            std::hint::black_box(f());
            iters += 1;
        }
        let per_iter = warm_start.elapsed() / iters.max(1) as u32;
        // Batch iterations so each sample measures >= ~1ms.
        let batch = if per_iter.is_zero() {
            1000
        } else {
            (Duration::from_millis(1).as_nanos() / per_iter.as_nanos().max(1)).max(1) as u64
        };
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            self.samples.push(start.elapsed() / batch as u32);
        }
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, filter: Option<&str>, mut f: F) {
    if let Some(pat) = filter {
        if !id.contains(pat) {
            return;
        }
    }
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{id:<40} (no samples)");
        return;
    }
    b.samples.sort_unstable();
    let median = b.samples[b.samples.len() / 2];
    let lo = b.samples[0];
    let hi = b.samples[b.samples.len() - 1];
    println!(
        "{id:<40} median {:>12} [{} .. {}]",
        fmt_duration(median),
        fmt_duration(lo),
        fmt_duration(hi)
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} us", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Bundles benchmark functions into one group entry point. Supports
/// both the positional form and the `name`/`config`/`targets` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion {
            sample_size: 3,
            filter: None,
        };
        let mut ran = false;
        c.bench_function("smoke", |b| {
            ran = true;
            b.iter(|| std::hint::black_box(1 + 1));
        });
        assert!(ran);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion {
            sample_size: 2,
            filter: Some("zzz".into()),
        };
        let mut ran = false;
        c.bench_function("smoke", |b| {
            ran = true;
            b.iter(|| 1);
        });
        assert!(!ran);
    }

    #[test]
    fn groups_prefix_names() {
        let mut c = Criterion {
            sample_size: 2,
            filter: None,
        };
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_function(format!("x_{}", 1), |b| b.iter(|| 0));
        group.finish();
    }
}
