//! Derive macros for the serde shim.
//!
//! Hand-rolled over `proc_macro::TokenTree` (no `syn`/`quote`, so the
//! shim stays dependency-free). Supports the shapes FRACAS uses:
//! named-field structs, enums with unit and struct variants, and the
//! field attributes `#[serde(default)]` / `#[serde(default = "path")]`
//! / `#[serde(skip)]` (omitted on serialize, defaulted on deserialize).
//! The generated representation matches real serde's externally-tagged
//! JSON encoding.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// `None` — required field; `Some(None)` — `Default::default()`;
/// `Some(Some(path))` — call `path()`.
type FieldDefault = Option<Option<String>>;

struct Field {
    name: String,
    default: FieldDefault,
    /// `#[serde(skip)]`: never serialized, always defaulted.
    skip: bool,
}

struct Variant {
    name: String,
    /// `None` for unit variants.
    fields: Option<Vec<Field>>,
}

enum Body {
    Struct(Vec<Field>),
    Enum(Vec<Variant>),
}

/// Derives `serde::Serialize` (shim data model).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, body) = parse_input(input);
    let code = gen_serialize(&name, &body);
    code.parse().expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize` (shim data model).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, body) = parse_input(input);
    let code = gen_deserialize(&name, &body);
    code.parse().expect("generated Deserialize impl parses")
}

fn ident_of(tok: &TokenTree) -> Option<String> {
    match tok {
        TokenTree::Ident(id) => Some(id.to_string()),
        _ => None,
    }
}

fn is_punct(tok: &TokenTree, c: char) -> bool {
    matches!(tok, TokenTree::Punct(p) if p.as_char() == c)
}

fn parse_input(input: TokenStream) -> (String, Body) {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    // Skip outer attributes and visibility.
    while i < toks.len() {
        if is_punct(&toks[i], '#') {
            i += 2;
        } else if ident_of(&toks[i]).as_deref() == Some("pub") {
            i += 1;
            if matches!(toks.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                i += 1;
            }
        } else {
            break;
        }
    }
    let kind = ident_of(&toks[i]).expect("struct or enum keyword");
    i += 1;
    let name = ident_of(&toks[i]).expect("type name");
    i += 1;
    // Skip generics (unused by FRACAS types, handled for robustness).
    if i < toks.len() && is_punct(&toks[i], '<') {
        let mut depth = 0i32;
        while i < toks.len() {
            if is_punct(&toks[i], '<') {
                depth += 1;
            } else if is_punct(&toks[i], '>') {
                depth -= 1;
                if depth == 0 {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
    }
    let group = match &toks[i] {
        TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => g.clone(),
        other => panic!("serde shim derive supports only braced bodies, got {other:?}"),
    };
    let body = match kind.as_str() {
        "struct" => Body::Struct(parse_fields(group.stream())),
        "enum" => Body::Enum(parse_variants(group.stream())),
        other => panic!("cannot derive serde traits for `{other}`"),
    };
    (name, body)
}

/// A recognised field attribute.
enum FieldAttr {
    Default(Option<String>),
    Skip,
}

/// Parses `#[serde(default)]` / `#[serde(default = "path")]` /
/// `#[serde(skip)]` from one attribute body (the tokens inside
/// `#[...]`).
fn parse_serde_attr(attr: TokenStream) -> Option<FieldAttr> {
    let toks: Vec<TokenTree> = attr.into_iter().collect();
    if ident_of(toks.first()?).as_deref() != Some("serde") {
        return None;
    }
    let inner: Vec<TokenTree> = match toks.get(1) {
        Some(TokenTree::Group(g)) => g.stream().into_iter().collect(),
        _ => return None,
    };
    match ident_of(inner.first()?).as_deref() {
        Some("skip") => Some(FieldAttr::Skip),
        Some("default") => {
            if inner.len() >= 3 && is_punct(&inner[1], '=') {
                let lit = inner[2].to_string();
                let path = lit.trim_matches('"').to_string();
                Some(FieldAttr::Default(Some(path)))
            } else {
                Some(FieldAttr::Default(None))
            }
        }
        _ => None,
    }
}

fn parse_fields(ts: TokenStream) -> Vec<Field> {
    let toks: Vec<TokenTree> = ts.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let mut default: FieldDefault = None;
        let mut skip = false;
        // Attributes and visibility before the field name.
        loop {
            if i >= toks.len() {
                return fields;
            }
            if is_punct(&toks[i], '#') {
                if let Some(TokenTree::Group(g)) = toks.get(i + 1) {
                    match parse_serde_attr(g.stream()) {
                        Some(FieldAttr::Default(d)) => default = Some(d),
                        Some(FieldAttr::Skip) => skip = true,
                        None => {}
                    }
                }
                i += 2;
            } else if ident_of(&toks[i]).as_deref() == Some("pub") {
                i += 1;
                if matches!(toks.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    i += 1;
                }
            } else {
                break;
            }
        }
        let name = ident_of(&toks[i]).expect("field name");
        i += 1;
        assert!(is_punct(&toks[i], ':'), "expected `:` after field `{name}`");
        i += 1;
        // Skip the type: to the next comma at angle-bracket depth zero.
        let mut depth = 0i32;
        while i < toks.len() {
            if is_punct(&toks[i], '<') {
                depth += 1;
            } else if is_punct(&toks[i], '>') {
                depth -= 1;
            } else if is_punct(&toks[i], ',') && depth == 0 {
                i += 1;
                break;
            }
            i += 1;
        }
        fields.push(Field {
            name,
            default,
            skip,
        });
    }
    fields
}

fn parse_variants(ts: TokenStream) -> Vec<Variant> {
    let toks: Vec<TokenTree> = ts.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        while i < toks.len() && is_punct(&toks[i], '#') {
            i += 2;
        }
        if i >= toks.len() {
            break;
        }
        let name = ident_of(&toks[i]).expect("variant name");
        i += 1;
        let fields = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Some(parse_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                panic!("serde shim derive does not support tuple variants (`{name}`)")
            }
            _ => None,
        };
        if i < toks.len() {
            assert!(
                is_punct(&toks[i], ','),
                "expected `,` after variant `{name}`"
            );
            i += 1;
        }
        variants.push(Variant { name, fields });
    }
    variants
}

fn serialize_fields_expr(fields: &[Field], access: &dyn Fn(&str) -> String) -> String {
    let mut entries = String::new();
    for f in fields {
        if f.skip {
            continue;
        }
        entries.push_str(&format!(
            "(\"{0}\".to_string(), ::serde::Serialize::to_value(&{1})),",
            f.name,
            access(&f.name)
        ));
    }
    format!("::serde::Value::Object(vec![{entries}])")
}

fn gen_serialize(name: &str, body: &Body) -> String {
    let body_code = match body {
        Body::Struct(fields) => serialize_fields_expr(fields, &|f| format!("self.{f}")),
        Body::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                match &v.fields {
                    None => arms.push_str(&format!(
                        "{name}::{0} => ::serde::Value::Str(\"{0}\".to_string()),",
                        v.name
                    )),
                    Some(fields) => {
                        let binders: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                        let inner = serialize_fields_expr(fields, &|f| format!("(*{f})"));
                        arms.push_str(&format!(
                            "{name}::{0} {{ {1} }} => ::serde::Value::Object(vec![(\"{0}\".to_string(), {inner})]),",
                            v.name,
                            binders.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body_code} }}\n\
         }}"
    )
}

/// The expression filling one field from `entries` during deserialize.
fn deserialize_field_expr(type_name: &str, f: &Field) -> String {
    if f.skip {
        return format!("{}: ::core::default::Default::default(),", f.name);
    }
    let missing = match &f.default {
        None => format!(
            "return ::core::result::Result::Err(::serde::DeError::custom(\
                 \"missing field `{0}` in {type_name}\"))",
            f.name
        ),
        Some(None) => "::core::default::Default::default()".to_string(),
        Some(Some(path)) => format!("{path}()"),
    };
    format!(
        "{0}: match ::serde::field(entries, \"{0}\") {{\n\
             ::core::option::Option::Some(x) => ::serde::Deserialize::from_value(x)?,\n\
             ::core::option::Option::None => {missing},\n\
         }},",
        f.name
    )
}

fn gen_deserialize(name: &str, body: &Body) -> String {
    let body_code = match body {
        Body::Struct(fields) => {
            let fills: String = fields
                .iter()
                .map(|f| deserialize_field_expr(name, f))
                .collect();
            format!(
                "let entries = v.as_object().ok_or_else(|| \
                     ::serde::DeError::custom(\"expected object for {name}\"))?;\n\
                 ::core::result::Result::Ok({name} {{ {fills} }})"
            )
        }
        Body::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut struct_arms = String::new();
            for v in variants {
                match &v.fields {
                    None => unit_arms.push_str(&format!(
                        "\"{0}\" => ::core::result::Result::Ok({name}::{0}),",
                        v.name
                    )),
                    Some(fields) => {
                        let fills: String = fields
                            .iter()
                            .map(|f| deserialize_field_expr(&format!("{name}::{}", v.name), f))
                            .collect();
                        struct_arms.push_str(&format!(
                            "\"{0}\" => {{\n\
                                 let entries = inner.as_object().ok_or_else(|| \
                                     ::serde::DeError::custom(\"expected object for {name}::{0}\"))?;\n\
                                 ::core::result::Result::Ok({name}::{0} {{ {fills} }})\n\
                             }},",
                            v.name
                        ));
                    }
                }
            }
            let inner_binding = if struct_arms.is_empty() {
                "_inner"
            } else {
                "inner"
            };
            format!(
                "match v {{\n\
                     ::serde::Value::Str(s) => match s.as_str() {{\n\
                         {unit_arms}\n\
                         other => ::core::result::Result::Err(::serde::DeError::custom(\
                             format!(\"unknown variant `{{other}}` for {name}\"))),\n\
                     }},\n\
                     ::serde::Value::Object(entries) if entries.len() == 1 => {{\n\
                         let (tag, {inner_binding}) = &entries[0];\n\
                         match tag.as_str() {{\n\
                             {struct_arms}\n\
                             other => ::core::result::Result::Err(::serde::DeError::custom(\
                                 format!(\"unknown variant `{{other}}` for {name}\"))),\n\
                         }}\n\
                     }},\n\
                     _ => ::core::result::Result::Err(::serde::DeError::custom(\
                         \"expected variant tag for {name}\")),\n\
                 }}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) \
                 -> ::core::result::Result<Self, ::serde::DeError> {{\n\
                 {body_code}\n\
             }}\n\
         }}"
    )
}
