//! Workspace root crate: hosts the integration tests (`tests/`) and the
//! runnable examples (`examples/`). The library surface simply re-exports
//! the [`fracas`] facade.

pub use fracas::*;
